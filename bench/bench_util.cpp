#include "bench/bench_util.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"
#include "common/parse.hpp"

namespace dsm::bench {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

ParseResult fail(ParseResult r, std::string msg) {
  r.ok = false;
  r.error = std::move(msg);
  return r;
}

// Each simulated processor is an OS thread; anything past this is a typo,
// not an experiment.
constexpr unsigned long kMaxNodes = 4096;
constexpr unsigned long kMaxThreads = 4096;

}  // namespace

const char* usage_text() {
  return
      "options:\n"
      "  --scale=paper|bench|test   workload size (default paper)\n"
      "  --apps=LU,FMM,Art,Equake   subset of applications\n"
      "  --nodes=2,8,32             subset of node counts\n"
      "  --protocol=msi,mesi,moesi  coherence protocols to sweep (default:\n"
      "                             mesi only, not recorded as an axis)\n"
      "  --batch=N | --batch=1,4,16 Machine→fabric access batch size, 1-64.\n"
      "                             A single value is a pure execution knob\n"
      "                             (output byte-identical to --batch=1); a\n"
      "                             comma list sweeps batch as an axis\n"
      "  --csv=DIR                  dump full-resolution CSV (live runs;\n"
      "                             sharded: dsm_report render --csv=DIR)\n"
      "  --threads=N                sweep worker threads (0 = one per core,\n"
      "                             default 1)\n"
      "  --shards=N                 run the pull-fleet coordinator: fork N\n"
      "                             workers, lease them spec-index ranges,\n"
      "                             survive worker deaths, and merge the\n"
      "                             record streams in spec order\n"
      "  --shard=i/N                run shard i of N only, emitting NDJSON\n"
      "                             records instead of tables (static\n"
      "                             worker mode, for collected-file flows)\n"
      "  --pull=fd:K|host:port      pull-worker mode: lease work from a\n"
      "                             fleet coordinator over this transport\n"
      "  --listen=PORT              with --shards=N: accept the N workers\n"
      "                             over TCP instead of forking (start them\n"
      "                             with --pull=host:PORT)\n"
      "  --resume=FILE              with --shards=N: scan this NDJSON store,\n"
      "                             re-emit its complete records, and lease\n"
      "                             only the gap spec indices\n"
      "  --lease-log=FILE           with --shards=N: append the lease ledger\n"
      "                             (leased/retrying/dead/done) as NDJSON;\n"
      "                             view with `dsm_report progress --lease=`\n"
      "  --inject-fault=KIND@SPEC   with --shards=N: deterministically kill\n"
      "                             the worker running spec index SPEC\n"
      "                             (KIND: worker-exit, worker-hang,\n"
      "                             truncated-record, dropped-heartbeat)\n"
      "  --lease-timeout-ms=N       heartbeat deadline before a leased\n"
      "                             worker is declared dead (default 30000)\n"
      "  --hb-interval-ms=N         worker heartbeat cadence (default 1000)\n"
      "  --max-respawns=N           respawns per dead worker slot (def. 3)\n"
      "  --backoff-ms=N             respawn backoff base, doubled per\n"
      "                             attempt (default 250, capped at 8000)\n"
      "  --lease-chunk=N            spec indices per lease (default: auto)\n"
      "  --obs-stats                attach each machine's deterministic\n"
      "                             metrics snapshot to its record (the\n"
      "                             envelope's \"obs\" field; view with\n"
      "                             `dsm_report stats`)\n"
      "  --obs-intervals            capture phase-attributed interval\n"
      "                             metric snapshots (implies --obs-stats;\n"
      "                             the envelope's \"obs_intervals\" field;\n"
      "                             view with `dsm_report timeline`)\n"
      "  --heartbeat=FILE           append worker progress heartbeats to\n"
      "                             FILE (stream mode; with --shards=N each\n"
      "                             worker i writes FILE.<i>; view with\n"
      "                             `dsm_report progress`)\n"
      "  --trace=FILE               dump the per-node binary event trace to\n"
      "                             FILE (multi-point sweeps: FILE.<index>);\n"
      "                             convert with `dsm_report trace`\n"
      "  --verbose                  progress logging\n";
}

int usage_error(const ParseResult& r) {
  std::fprintf(stderr, "error: %s\n%s", r.error.c_str(), usage_text());
  return 2;
}

ParseResult parse_options(int argc, char** argv) {
  ParseResult res;
  BenchOptions& opt = res.options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--scale=", 0) == 0) {
      const std::string v = value("--scale=");
      if (v == "paper") opt.scale = apps::Scale::kPaper;
      else if (v == "bench") opt.scale = apps::Scale::kBench;
      else if (v == "test") opt.scale = apps::Scale::kTest;
      else return fail(std::move(res), "unknown --scale value: " + v);
      res.scale_set = true;
    } else if (arg.rfind("--apps=", 0) == 0) {
      opt.app_names = split(value("--apps="), ',');
      for (const auto& n : opt.app_names)
        if (apps::find_app(n) == nullptr)
          return fail(std::move(res),
                      "unknown app: " + n + " (valid: LU,FMM,Art,Equake)");
    } else if (arg.rfind("--nodes=", 0) == 0) {
      for (const auto& n : split(value("--nodes="), ',')) {
        unsigned long v = 0;
        if (!parse_unsigned(n, 1, kMaxNodes, v))
          return fail(std::move(res), "bad --nodes entry: " + n);
        opt.node_counts.push_back(static_cast<unsigned>(v));
      }
    } else if (arg.rfind("--protocol=", 0) == 0) {
      opt.protocols = split(value("--protocol="), ',');
      Protocol p;
      for (const auto& n : opt.protocols)
        if (!protocol_from_name(n, &p))
          return fail(std::move(res),
                      "unknown protocol: " + n + " (valid: msi,mesi,moesi)");
      if (opt.protocols.empty())
        return fail(std::move(res), "empty --protocol list");
      // The machine default: drop the axis entirely so --protocol=mesi is
      // byte-identical (seeds, records, output) to not passing the flag.
      if (opt.protocols == std::vector<std::string>{"mesi"})
        opt.protocols.clear();
    } else if (arg.rfind("--batch=", 0) == 0) {
      std::vector<unsigned> vals;
      for (const auto& n : split(value("--batch="), ',')) {
        unsigned long v = 0;
        if (!parse_unsigned(n, 1, 64, v))
          return fail(std::move(res),
                      "bad --batch entry (want 1..64): " + n);
        vals.push_back(static_cast<unsigned>(v));
      }
      if (vals.empty()) return fail(std::move(res), "empty --batch list");
      if (vals.size() == 1) {
        // Single value: a pure execution knob, never an axis — and
        // --batch=1 is the serial default, so it normalizes to exactly
        // the no-flag state (seeds, records, output all byte-identical).
        opt.batches.clear();
        opt.batch_size = vals[0];
      } else {
        opt.batches = vals;
        opt.batch_size = 1;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string v = value("--threads=");
      unsigned long t = 0;
      if (!parse_unsigned(v, 0, kMaxThreads, t))
        return fail(std::move(res), "bad --threads value: " + v);
      opt.threads = static_cast<unsigned>(t);
    } else if (arg.rfind("--shards=", 0) == 0) {
      const std::string v = value("--shards=");
      unsigned long n = 0;
      if (!parse_unsigned(v, 1, shard::kMaxShards, n))
        return fail(std::move(res), "bad --shards value: " + v);
      opt.shards = static_cast<unsigned>(n);
    } else if (arg.rfind("--shard=", 0) == 0) {
      const std::string v = value("--shard=");
      const auto plan = shard::parse_shard(v);
      if (!plan)
        return fail(std::move(res),
                    "bad --shard value (want i/N with 0 <= i < N): " + v);
      opt.shard = *plan;
      opt.shard_set = true;
    } else if (arg.rfind("--pull=", 0) == 0) {
      const std::string v = value("--pull=");
      if (!shard::parse_endpoint(v))
        return fail(std::move(res),
                    "bad --pull endpoint (want fd:K or host:port): " + v);
      opt.pull_endpoint = v;
    } else if (arg.rfind("--listen=", 0) == 0) {
      const std::string v = value("--listen=");
      unsigned long p = 0;
      if (!parse_unsigned(v, 1, 65535, p))
        return fail(std::move(res), "bad --listen port: " + v);
      opt.listen_port = static_cast<unsigned>(p);
    } else if (arg.rfind("--resume=", 0) == 0) {
      opt.resume_store = value("--resume=");
      if (opt.resume_store.empty())
        return fail(std::move(res), "empty --resume path");
    } else if (arg.rfind("--lease-log=", 0) == 0) {
      opt.lease_log = value("--lease-log=");
      if (opt.lease_log.empty())
        return fail(std::move(res), "empty --lease-log path");
    } else if (arg.rfind("--inject-fault=", 0) == 0) {
      const std::string v = value("--inject-fault=");
      if (!shard::parse_fault_spec(v, &opt.fault, &opt.fault_spec))
        return fail(std::move(res),
                    "bad --inject-fault value (want KIND@SPEC with KIND one "
                    "of worker-exit, worker-hang, truncated-record, "
                    "dropped-heartbeat): " +
                        v);
    } else if (arg.rfind("--lease-timeout-ms=", 0) == 0) {
      const std::string v = value("--lease-timeout-ms=");
      unsigned long ms = 0;
      if (!parse_unsigned(v, 1, 86400000, ms))
        return fail(std::move(res), "bad --lease-timeout-ms value: " + v);
      opt.tuning.heartbeat_deadline_ms = ms;
    } else if (arg.rfind("--hb-interval-ms=", 0) == 0) {
      const std::string v = value("--hb-interval-ms=");
      unsigned long ms = 0;
      if (!parse_unsigned(v, 1, 3600000, ms))
        return fail(std::move(res), "bad --hb-interval-ms value: " + v);
      opt.tuning.heartbeat_interval_ms = ms;
    } else if (arg.rfind("--max-respawns=", 0) == 0) {
      const std::string v = value("--max-respawns=");
      unsigned long n = 0;
      if (!parse_unsigned(v, 0, 100, n))
        return fail(std::move(res), "bad --max-respawns value: " + v);
      opt.tuning.max_respawns = static_cast<unsigned>(n);
    } else if (arg.rfind("--backoff-ms=", 0) == 0) {
      const std::string v = value("--backoff-ms=");
      unsigned long ms = 0;
      if (!parse_unsigned(v, 1, 3600000, ms))
        return fail(std::move(res), "bad --backoff-ms value: " + v);
      opt.tuning.backoff_base_ms = ms;
      if (opt.tuning.backoff_max_ms < ms) opt.tuning.backoff_max_ms = ms;
    } else if (arg.rfind("--lease-chunk=", 0) == 0) {
      const std::string v = value("--lease-chunk=");
      unsigned long n = 0;
      if (!parse_unsigned(v, 1, 65536, n))
        return fail(std::move(res), "bad --lease-chunk value: " + v);
      opt.tuning.lease_chunk = static_cast<std::size_t>(n);
    } else if (arg.rfind("--csv=", 0) == 0) {
      opt.csv_dir = value("--csv=");
    } else if (arg == "--obs-stats") {
      opt.obs_stats = true;
    } else if (arg == "--obs-intervals") {
      opt.obs_intervals = true;
    } else if (arg.rfind("--heartbeat=", 0) == 0) {
      opt.heartbeat_path = value("--heartbeat=");
      if (opt.heartbeat_path.empty())
        return fail(std::move(res), "empty --heartbeat path");
    } else if (arg.rfind("--trace=", 0) == 0) {
      opt.trace_path = value("--trace=");
      if (opt.trace_path.empty())
        return fail(std::move(res), "empty --trace path");
    } else if (arg == "--verbose") {
      opt.verbose = true;
      set_log_level(LogLevel::kInfo);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // google-benchmark flag: not ours, ignore.
    } else {
      return fail(std::move(res), "unknown option: " + arg);
    }
  }
  if (opt.shard_set && opt.shards > 0)
    return fail(std::move(res),
                "--shard (worker) and --shards (orchestrator) are mutually "
                "exclusive");
  if (!opt.pull_endpoint.empty() && (opt.shard_set || opt.shards > 0))
    return fail(std::move(res),
                "--pull (fleet worker) is mutually exclusive with --shard "
                "and --shards");
  // Coordinator-only flags: these shape the fleet the coordinator runs,
  // so a worker (or plain local run) accepting them silently would hide
  // a misconfigured launch script.
  if (opt.shards == 0) {
    const char* stray = nullptr;
    if (opt.listen_port != 0) stray = "--listen";
    else if (!opt.resume_store.empty()) stray = "--resume";
    else if (!opt.lease_log.empty()) stray = "--lease-log";
    else if (opt.fault != shard::FaultKind::kNone) stray = "--inject-fault";
    if (stray != nullptr)
      return fail(std::move(res), std::string(stray) +
                                      " only makes sense on the coordinator: "
                                      "add --shards=N");
  }
  // CSV files are written by the renderer, which stream mode suppresses;
  // silently producing no files would be worse than refusing. The records
  // carry the full-resolution curves, so the offline renderer recovers
  // the same files from the collected stream.
  if (!opt.csv_dir.empty() &&
      (opt.shard_set || opt.shards > 0 || !opt.pull_endpoint.empty()))
    return fail(std::move(res),
                "--csv is not available in sharded runs: collect the NDJSON "
                "stream and run `dsm_report render --csv=DIR` over it");
  return res;
}

std::optional<int> maybe_orchestrate(int argc, char** argv,
                                     const ParseResult& parsed) {
  if (!parsed.ok || parsed.options.shards == 0) return std::nullopt;
  const BenchOptions& bo = parsed.options;
  shard::FleetOptions o;
  o.binary = shard::self_exe(argc > 0 ? argv[0] : nullptr);
  // Coordinator-only flags are consumed here, not forwarded: workers get
  // the sweep-shaping flags plus a `--pull=` endpoint the coordinator
  // appends per spawn. (`--heartbeat` becomes per-worker socket
  // heartbeats the coordinator tees into FILE.<i> itself.)
  static const char* kCoordinatorOnly[] = {
      "--shards=",          "--heartbeat=",      "--resume=",
      "--lease-log=",       "--inject-fault=",   "--lease-timeout-ms=",
      "--hb-interval-ms=",  "--max-respawns=",   "--backoff-ms=",
      "--lease-chunk=",     "--listen=",
  };
  for (int i = 1; i < argc; ++i) {
    bool skip = false;
    for (const char* p : kCoordinatorOnly)
      skip |= (std::strncmp(argv[i], p, std::strlen(p)) == 0);
    if (!skip) o.args.push_back(argv[i]);
  }
  o.workers = bo.shards;
  o.tuning = bo.tuning;
  o.heartbeat_path = bo.heartbeat_path;
  o.lease_log = bo.lease_log;
  o.resume_store = bo.resume_store;
  o.fault = bo.fault;
  o.fault_spec = bo.fault_spec;
  o.listen_port = bo.listen_port;
  return shard::run_fleet(o, stdout);
}

int pull_empty_sweep(const BenchOptions& opt, const char* bench_name) {
  // The worker's spec selection is empty (e.g. a filter matched nothing),
  // but the coordinator still expects the hello/pull/fin handshake; a
  // silent exit would read as a death and trigger pointless respawns.
  const auto ep = shard::parse_endpoint(opt.pull_endpoint);
  if (!ep) {
    std::fprintf(stderr, "pull worker: bad endpoint %s\n",
                 opt.pull_endpoint.c_str());
    return 1;
  }
  shard::PullWorker worker(*ep, bench_name, 0);
  if (!worker.ok()) return 1;
  while (worker.next_lease()) {
    // No specs: any lease would be a coordinator bug; drain to fin.
  }
  return worker.transport_lost() ? 1 : 0;
}

void pull_abort(const char* msg) {
  // Called from inside map_reduce's emit callback: throwing there would
  // unwind through the runner's worker threads, so die directly. The
  // coordinator sees the closed socket and re-leases our indices.
  std::fprintf(stderr, "pull worker: %s\n", msg);
  ::_exit(1);
}

Protocol protocol_of_point(const driver::SpecPoint& pt) {
  Protocol p = Protocol::kMesi;
  if (!pt.protocol.empty() && !protocol_from_name(pt.protocol, &p))
    throw std::runtime_error("unknown protocol: " + pt.protocol);
  return p;
}

ObsConfig obs_config_for_point(const BenchOptions& opt,
                               const driver::SpecPoint& pt,
                               bool multi_point) {
  ObsConfig obs;
  obs.stats = opt.obs_stats;
  obs.intervals = opt.obs_intervals;
  if (!opt.trace_path.empty()) {
    obs.trace = true;
    obs.trace_path = multi_point
                         ? opt.trace_path + "." + std::to_string(pt.index)
                         : opt.trace_path;
  }
  return obs;
}

sim::RunSummary run_workload(const apps::AppInfo& app, apps::Scale scale,
                             unsigned nodes, bool verbose,
                             std::uint64_t seed, Protocol protocol,
                             unsigned batch_size, const ObsConfig& obs) {
  MachineConfig cfg = default_config(nodes);
  cfg.phase.interval_instructions = apps::scaled_interval(app.name, scale);
  cfg.protocol = protocol;
  cfg.batch_size = batch_size;
  cfg.seed = seed;
  cfg.obs = obs;
  const auto t0 = std::chrono::steady_clock::now();
  sim::Machine machine(cfg);
  sim::RunSummary run = machine.run(app.factory(scale));
  if (verbose) {
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    DSM_LOG_INFO("%s @ %uP (%s): %zu intervals/proc0, CPI %.2f, %.1fs",
                 app.name.c_str(), nodes, apps::scale_name(scale),
                 run.procs[0].intervals.size(), run.cpi(0), dt);
  }
  return run;
}

std::vector<const apps::AppInfo*> selected_apps(const BenchOptions& opt) {
  std::vector<const apps::AppInfo*> out;
  for (const auto& app : apps::paper_apps()) {
    if (!opt.app_names.empty()) {
      bool want = false;
      // Case-insensitive via the registry lookup (parse_options has
      // already rejected unknown names).
      for (const auto& n : opt.app_names) want |= (apps::find_app(n) == &app);
      if (!want) continue;
    }
    out.push_back(&app);
  }
  return out;
}

std::vector<const apps::AppInfo*> named_apps(
    const BenchOptions& opt, const std::vector<std::string>& defaults) {
  const auto& names = opt.app_names.empty() ? defaults : opt.app_names;
  std::vector<const apps::AppInfo*> out;
  for (const auto& n : names) out.push_back(&apps::app_by_name(n));
  return out;
}

std::vector<WorkloadResult> run_sweep(
    const std::vector<const apps::AppInfo*>& apps,
    const std::vector<unsigned>& nodes, const BenchOptions& opt) {
  // An empty selection is an empty sweep (the pre-refactor loops printed
  // zero rows) — never a default "" spec point.
  if (apps.empty() || nodes.empty()) return {};

  driver::SweepSpec spec;
  for (const auto* app : apps) spec.apps.push_back(app->name);
  spec.node_counts = nodes;
  spec.scale = opt.scale;
  const auto points = spec.expand();

  const driver::ExperimentRunner runner(opt.threads);
  return runner.map<WorkloadResult>(
      points, [&](const driver::SpecPoint& pt) {
        WorkloadResult r;
        r.point = pt;
        r.app = &dsm::apps::app_by_name(pt.app);
        try {
          r.run = run_workload(*r.app, pt.scale, pt.nodes, opt.verbose,
                               driver::spec_seed(pt), Protocol::kMesi,
                               opt.batch_size);
        } catch (const std::exception& e) {
          // Name the configuration: in a parallel sweep "which point
          // failed" is otherwise lost.
          throw std::runtime_error(driver::spec_label(pt) + ": " +
                                   e.what());
        }
        return r;
      });
}

std::string host_context_json() {
  std::string cpu = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  for (std::string ln; std::getline(cpuinfo, ln);) {
    if (ln.rfind("model name", 0) == 0) {
      const auto colon = ln.find(':');
      if (colon != std::string::npos) {
        cpu = ln.substr(colon + 1);
        while (!cpu.empty() && cpu.front() == ' ') cpu.erase(cpu.begin());
      }
      break;
    }
  }
  std::string governor = "unknown";
  std::ifstream gov("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (gov) {
    std::getline(gov, governor);
    if (governor.empty()) governor = "unknown";
  }
  return shard::JsonObject()
      .add("cpu", cpu)
      .add("cores",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .add("governor", governor)
      .str();
}

std::string curve_json(const std::vector<analysis::CurvePoint>& curve) {
  shard::JsonArray arr;
  for (const auto& pt : curve) {
    arr.add_raw(shard::JsonArray()
                    .add(pt.mean_phases)
                    .add(pt.mean_cov)
                    .add(pt.tuning_fraction)
                    .add(static_cast<std::uint64_t>(pt.thresholds.bbv))
                    .add(pt.thresholds.dds)
                    .str());
  }
  return arr.str();
}

}  // namespace dsm::bench
