// perf_hotpath.cpp — driver-native throughput harness for the per-access
// hot path: CoherenceFabric::access -> Network::message_latency ->
// TopologyModel::route -> LinkContentionTracker, timed as raw accesses/sec
// per (topology × node count) configuration.
//
// Unlike the figure/table harnesses this does not run an application; it
// drives the memory system directly with a deterministic synthetic stream
// (streaming private misses, a read-mostly shared set, and a small
// contended write set) so the measurement isolates the fabric + network +
// cache path that every simulated memory op pays.
//
// Output split: stdout carries the record-driven deterministic table
// (the perf_hotpath renderer in src/report — byte-identical whether the
// records are replayed live or by `dsm_report render`); wall-clock
// numbers are a live-only measurement and go to stderr plus
// BENCH_hotpath.json (override with --json=PATH), so perf PRs leave a
// machine-readable trajectory. The `total_latency` / message/byte counts
// per configuration are simulated results and must be bit-identical
// across optimization PRs — only the wall-clock numbers may change.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "coherence/fabric.hpp"
#include "common/assert.hpp"
#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/table_writer.hpp"
#include "memory/home_map.hpp"
#include "network/network.hpp"
#include "obs/observability.hpp"
#include "obs/prof.hpp"

namespace {

using namespace dsm;

struct HotConfig {
  Topology topo;
  unsigned nodes;
};

struct HotResult {
  HotConfig cfg{};
  unsigned batch = 0;  ///< swept batch label (0 when the axis is unswept)
  std::uint64_t accesses = 0;
  double seconds = 0.0;
  // Deterministic simulation checksums — identical before/after any
  // mechanical strength-reduction of the hot path.
  std::uint64_t total_latency = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
  /// Deterministic metrics snapshot ("" unless --obs-stats).
  std::string obs_json;

  double ops_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(accesses) / seconds : 0.0;
  }
  double ns_per_access() const {
    return accesses > 0 ? seconds * 1e9 / static_cast<double>(accesses) : 0.0;
  }
};

// The per-topology node counts exercised by default (hypercube needs a
// power of two, mesh/torus a square; fabric caps at 64). --nodes filters.
const std::vector<HotConfig>& default_configs() {
  static const std::vector<HotConfig> kConfigs = {
      {Topology::kHypercube, 2},  {Topology::kHypercube, 8},
      {Topology::kHypercube, 32}, {Topology::kMesh2D, 4},
      {Topology::kMesh2D, 16},    {Topology::kTorus2D, 4},
      {Topology::kTorus2D, 16},   {Topology::kRing, 8},
      {Topology::kRing, 32},
  };
  return kConfigs;
}

std::uint64_t accesses_for(apps::Scale scale) {
  switch (scale) {
    case apps::Scale::kTest: return 200'000;
    case apps::Scale::kBench: return 2'000'000;
    case apps::Scale::kPaper: return 10'000'000;
  }
  return 200'000;
}

std::uint64_t stream_seed(const HotConfig& hc) {
  return hash_combine(static_cast<std::uint64_t>(hc.topo) + 1, hc.nodes);
}

// The advance hook replays the serial loop's bookkeeping between batch
// members, so the batched drive produces bit-identical checksums.
struct BatchTick {
  HotResult* res;
  Cycle now;
};

Cycle batch_tick(void* ctx, std::size_t /*index*/,
                 const coh::AccessOutcome& out) {
  auto* bt = static_cast<BatchTick*>(ctx);
  bt->res->total_latency += out.latency;
  bt->now += 4 + (out.latency >> 3);
  return bt->now;
}

HotResult time_config(const HotConfig& hc, std::uint64_t accesses,
                      unsigned batch, const ObsConfig& obs_cfg) {
  MachineConfig cfg = default_config(hc.nodes);
  cfg.network.topology = hc.topo;
  // Fabric-level driver, no Machine: construct the observability layer
  // standalone, exactly as Machine would, and hand it to both consumers.
  obs::Observability obs(obs_cfg, hc.nodes);
  net::Network network(cfg, &obs);
  mem::HomeMap home_map(hc.nodes, cfg.memory.page_bytes,
                        mem::Placement::kRoundRobin);
  coh::CoherenceFabric fabric(cfg, network, home_map, &obs);

  Rng rng(stream_seed(hc));
  const Addr line = cfg.l2.line_bytes;
  // Per-node private streams twice the L2 so the steady state is
  // miss + evict; a shared read-mostly set; a small contended write set.
  const std::uint64_t priv_lines =
      2 * cfg.l2.size_bytes / cfg.l2.line_bytes;
  const Addr shared_base = Addr{1} << 32;
  const Addr priv_base = Addr{1} << 36;
  constexpr std::uint64_t kSharedLines = 256;
  constexpr std::uint64_t kHotLines = 16;
  std::vector<std::uint64_t> priv_pos(hc.nodes, 0);

  HotResult res;
  res.cfg = hc;
  res.accesses = accesses;
  // The synthetic stream is generated from the RNG and per-node stream
  // positions alone — never from an outcome — so the batched drive can
  // stage `batch` requests up front without changing the address trace.
  auto next_req = [&](std::uint64_t i) {
    coh::CoherenceFabric::AccessReq rq;
    rq.node = static_cast<NodeId>(i % hc.nodes);
    const std::uint64_t r = rng.next_u64();
    const unsigned pick = static_cast<unsigned>(r % 100);
    if (pick < 50) {
      // Streaming private access: mostly misses once warm.
      rq.addr = priv_base + (Addr{rq.node} << 30) +
                (priv_pos[rq.node]++ % priv_lines) * line;
      rq.write = ((r >> 32) & 3) == 0;
    } else if (pick < 85) {
      // Read-mostly shared set: L1/L2 hits and shared fills.
      rq.addr = shared_base + ((r >> 8) % kSharedLines) * line;
      rq.write = false;
    } else {
      // Contended write set: upgrades + invalidation fan-out.
      rq.addr = shared_base + ((r >> 8) % kHotLines) * line;
      rq.write = true;
    }
    return rq;
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (batch <= 1) {
    Cycle now = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
      const auto rq = next_req(i);
      const auto out = fabric.access(rq.node, rq.addr, rq.write, now);
      res.total_latency += out.latency;
      now += 4 + (out.latency >> 3);
    }
  } else {
    coh::CoherenceFabric::AccessReq reqs[coh::CoherenceFabric::kMaxBatch];
    coh::AccessOutcome outs[coh::CoherenceFabric::kMaxBatch];
    BatchTick bt{&res, 0};
    for (std::uint64_t i = 0; i < accesses;) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(batch, accesses - i));
      for (std::size_t k = 0; k < n; ++k) reqs[k] = next_req(i + k);
      // batch_tick never stops the batch, so one call completes it.
      const std::size_t done = fabric.access_batch(
          std::span<const coh::CoherenceFabric::AccessReq>(reqs, n),
          std::span<coh::AccessOutcome>(outs, n), bt.now, &batch_tick, &bt);
      DSM_ASSERT(done == n);
      i += n;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  res.net_messages = network.total_messages();
  res.net_bytes = network.total_bytes();
  res.obs_json = obs.snapshot_json();
  if (obs_cfg.trace && !obs_cfg.trace_path.empty()) {
    std::string err;
    if (!obs.trace_buffer().dump(obs_cfg.trace_path, &err))
      std::fprintf(stderr, "warning: trace dump failed: %s\n", err.c_str());
  }
  return res;
}

void write_json(const std::string& path, apps::Scale scale,
                std::uint64_t accesses, const std::vector<HotResult>& results) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  f << "{\n";
  f << "  \"bench\": \"perf_hotpath\",\n";
  f << "  \"scale\": \"" << apps::scale_name(scale) << "\",\n";
  f << "  \"host\": " << bench::host_context_json() << ",\n";
  // Present only in -DDSM_OBS_PROF=ON builds: the self-profiler's stage
  // breakdown for this process (all configs pooled).
  if (obs::prof_enabled())
    f << "  \"prof\": " << obs::prof_report_json() << ",\n";
  f << "  \"accesses_per_config\": " << accesses << ",\n";
  f << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    // Swept batch values label their rows; unswept runs keep the
    // pre-batching row shape byte-for-byte.
    char batch_field[32] = "";
    if (r.batch != 0)
      std::snprintf(batch_field, sizeof(batch_field), "\"batch\": %u, ",
                    r.batch);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"topology\": \"%s\", \"nodes\": %u, %s"
                  "\"ops_per_sec\": %.0f, \"ns_per_access\": %.1f, "
                  "\"total_latency\": %llu, \"net_messages\": %llu, "
                  "\"net_bytes\": %llu}%s\n",
                  topology_name(r.cfg.topo), r.cfg.nodes, batch_field,
                  r.ops_per_sec(), r.ns_per_access(),
                  static_cast<unsigned long long>(r.total_latency),
                  static_cast<unsigned long long>(r.net_messages),
                  static_cast<unsigned long long>(r.net_bytes),
                  i + 1 < results.size() ? "," : "");
    f << buf;
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  // --json=PATH is ours; everything else goes through the shared parser.
  std::string json_path = "BENCH_hotpath.json";
  bool json_set = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      json_set = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  auto res = bench::parse_options(static_cast<int>(args.size()), args.data());
  if (!res.ok) return bench::usage_error(res);
  if (json_set && (res.options.shard_set || res.options.shards > 0)) {
    // Sharded runs emit NDJSON records instead of the table/JSON outputs;
    // accepting --json and then writing nothing would silently break the
    // perf-trajectory contract the file documents.
    std::fprintf(stderr, "error: --json is not available in sharded runs "
                         "(the NDJSON stream carries the deterministic "
                         "counters)\n");
    return 2;
  }
  if (const auto rc = bench::maybe_orchestrate(
          static_cast<int>(args.size()), args.data(), res))
    return *rc;
  const bench::BenchOptions& opt = res.options;
  const bool stream = bench::stream_mode(opt);
  // Throughput timing wants an idle machine per config; the driver still
  // fans configurations out when --threads is raised (numbers then measure
  // aggregate throughput, not per-config latency — same for --shards).
  const std::uint64_t accesses = accesses_for(opt.scale);

  std::vector<HotConfig> configs;
  for (const auto& c : default_configs()) {
    if (!opt.node_counts.empty()) {
      bool want = false;
      for (const unsigned n : opt.node_counts) want |= (n == c.nodes);
      if (!want) continue;
    }
    configs.push_back(c);
  }

  // One spec point per configuration × batch value; the topology rides
  // the variant label so the config key reads "run/8p/Hypercube" (with a
  // "/bN" suffix when the batch axis is swept). The seed is the config's
  // stream seed regardless of batch, so every batch value replays the
  // identical access trace — the checksum columns MUST agree across a
  // swept batch axis, which is the bit-identity demonstration.
  const std::vector<unsigned> batch_axis =
      opt.batches.empty() ? std::vector<unsigned>{0} : opt.batches;
  std::vector<driver::SpecPoint> points;
  for (const auto& c : configs) {
    for (const unsigned b : batch_axis) {
      driver::SpecPoint pt;
      pt.nodes = c.nodes;
      pt.detector = topology_name(c.topo);
      pt.batch = b;
      pt.scale = opt.scale;
      pt.index = points.size();
      points.push_back(std::move(pt));
    }
  }

  // Wall-clock is a live-only measurement (stderr + JSON trajectory);
  // the record-driven stdout table carries the deterministic counters.
  std::vector<HotResult> results;
  const int rc = bench::sharded_sweep<HotResult, HotResult>(
      points, opt, "perf_hotpath",
      [&](const driver::SpecPoint& pt) {
        HotResult r = time_config(
            configs[pt.index / batch_axis.size()], accesses,
            pt.batch != 0 ? pt.batch : opt.batch_size,
            bench::obs_config_for_point(opt, pt, points.size() > 1));
        r.batch = pt.batch;
        return r;
      },
      [](const driver::SpecPoint&, HotResult&& r) { return r; },
      [&](const driver::SpecPoint& pt) {
        return stream_seed(configs[pt.index / batch_axis.size()]);
      },
      [](const driver::SpecPoint&, const HotResult& r) {
        // Deterministic checksums only: wall-clock would break the
        // merged-vs-serial byte comparison.
        return shard::JsonObject()
            .add("accesses", r.accesses)
            .add("total_latency", r.total_latency)
            .add("net_messages", r.net_messages)
            .add("net_bytes", r.net_bytes)
            .str();
      },
      [&](const driver::SpecPoint&, const HotResult& r) {
        results.push_back(r);
      },
      [](const driver::SpecPoint&, const HotResult& r) {
        return r.obs_json;
      });
  if (stream) return rc;

  if (obs::prof_enabled())
    std::fprintf(stderr, "self-profiler (tsc, inclusive):\n%s\n",
                 obs::prof_report_text().c_str());

  TableWriter wall({"topology", "nodes", "batch", "Maccess/s", "ns/access"});
  for (const auto& r : results) {
    const unsigned eff = r.batch != 0 ? r.batch : opt.batch_size;
    wall.add_row({topology_name(r.cfg.topo), std::to_string(r.cfg.nodes),
                  std::to_string(eff),
                  TableWriter::fmt(r.ops_per_sec() / 1e6, 3),
                  TableWriter::fmt(r.ns_per_access(), 4)});
  }
  std::fprintf(stderr, "wall-clock (live-only, varies run to run):\n%s\n",
               wall.to_text().c_str());
  write_json(json_path, opt.scale, accesses, results);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return rc;
}
