// perf_hotpath.cpp — driver-native throughput harness for the per-access
// hot path: CoherenceFabric::access -> Network::message_latency ->
// TopologyModel::route -> LinkContentionTracker, timed as raw accesses/sec
// per (topology × node count) configuration.
//
// Unlike the figure/table harnesses this does not run an application; it
// drives the memory system directly with a deterministic synthetic stream
// (streaming private misses, a read-mostly shared set, and a small
// contended write set) so the measurement isolates the fabric + network +
// cache path that every simulated memory op pays.
//
// Output split: stdout carries the record-driven deterministic table
// (the perf_hotpath renderer in src/report — byte-identical whether the
// records are replayed live or by `dsm_report render`); wall-clock
// numbers are a live-only measurement and go to stderr plus
// BENCH_hotpath.json (override with --json=PATH), so perf PRs leave a
// machine-readable trajectory. The `total_latency` / message/byte counts
// per configuration are simulated results and must be bit-identical
// across optimization PRs — only the wall-clock numbers may change.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "coherence/fabric.hpp"
#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/table_writer.hpp"
#include "memory/home_map.hpp"
#include "network/network.hpp"

namespace {

using namespace dsm;

struct HotConfig {
  Topology topo;
  unsigned nodes;
};

struct HotResult {
  HotConfig cfg{};
  std::uint64_t accesses = 0;
  double seconds = 0.0;
  // Deterministic simulation checksums — identical before/after any
  // mechanical strength-reduction of the hot path.
  std::uint64_t total_latency = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;

  double ops_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(accesses) / seconds : 0.0;
  }
  double ns_per_access() const {
    return accesses > 0 ? seconds * 1e9 / static_cast<double>(accesses) : 0.0;
  }
};

// The per-topology node counts exercised by default (hypercube needs a
// power of two, mesh/torus a square; fabric caps at 64). --nodes filters.
const std::vector<HotConfig>& default_configs() {
  static const std::vector<HotConfig> kConfigs = {
      {Topology::kHypercube, 2},  {Topology::kHypercube, 8},
      {Topology::kHypercube, 32}, {Topology::kMesh2D, 4},
      {Topology::kMesh2D, 16},    {Topology::kTorus2D, 4},
      {Topology::kTorus2D, 16},   {Topology::kRing, 8},
      {Topology::kRing, 32},
  };
  return kConfigs;
}

std::uint64_t accesses_for(apps::Scale scale) {
  switch (scale) {
    case apps::Scale::kTest: return 200'000;
    case apps::Scale::kBench: return 2'000'000;
    case apps::Scale::kPaper: return 10'000'000;
  }
  return 200'000;
}

std::uint64_t stream_seed(const HotConfig& hc) {
  return hash_combine(static_cast<std::uint64_t>(hc.topo) + 1, hc.nodes);
}

HotResult time_config(const HotConfig& hc, std::uint64_t accesses) {
  MachineConfig cfg = default_config(hc.nodes);
  cfg.network.topology = hc.topo;
  net::Network network(cfg);
  mem::HomeMap home_map(hc.nodes, cfg.memory.page_bytes,
                        mem::Placement::kRoundRobin);
  coh::CoherenceFabric fabric(cfg, network, home_map);

  Rng rng(stream_seed(hc));
  const Addr line = cfg.l2.line_bytes;
  // Per-node private streams twice the L2 so the steady state is
  // miss + evict; a shared read-mostly set; a small contended write set.
  const std::uint64_t priv_lines =
      2 * cfg.l2.size_bytes / cfg.l2.line_bytes;
  const Addr shared_base = Addr{1} << 32;
  const Addr priv_base = Addr{1} << 36;
  constexpr std::uint64_t kSharedLines = 256;
  constexpr std::uint64_t kHotLines = 16;
  std::vector<std::uint64_t> priv_pos(hc.nodes, 0);

  HotResult res;
  res.cfg = hc;
  res.accesses = accesses;
  Cycle now = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < accesses; ++i) {
    const NodeId node = static_cast<NodeId>(i % hc.nodes);
    const std::uint64_t r = rng.next_u64();
    const unsigned pick = static_cast<unsigned>(r % 100);
    Addr a;
    bool write;
    if (pick < 50) {
      // Streaming private access: mostly misses once warm.
      a = priv_base + (Addr{node} << 30) +
          (priv_pos[node]++ % priv_lines) * line;
      write = ((r >> 32) & 3) == 0;
    } else if (pick < 85) {
      // Read-mostly shared set: L1/L2 hits and shared fills.
      a = shared_base + ((r >> 8) % kSharedLines) * line;
      write = false;
    } else {
      // Contended write set: upgrades + invalidation fan-out.
      a = shared_base + ((r >> 8) % kHotLines) * line;
      write = true;
    }
    const auto out = fabric.access(node, a, write, now);
    res.total_latency += out.latency;
    now += 4 + (out.latency >> 3);
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  res.net_messages = network.total_messages();
  res.net_bytes = network.total_bytes();
  return res;
}

void write_json(const std::string& path, apps::Scale scale,
                std::uint64_t accesses, const std::vector<HotResult>& results) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  f << "{\n";
  f << "  \"bench\": \"perf_hotpath\",\n";
  f << "  \"scale\": \"" << apps::scale_name(scale) << "\",\n";
  f << "  \"host\": " << bench::host_context_json() << ",\n";
  f << "  \"accesses_per_config\": " << accesses << ",\n";
  f << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"topology\": \"%s\", \"nodes\": %u, "
                  "\"ops_per_sec\": %.0f, \"ns_per_access\": %.1f, "
                  "\"total_latency\": %llu, \"net_messages\": %llu, "
                  "\"net_bytes\": %llu}%s\n",
                  topology_name(r.cfg.topo), r.cfg.nodes, r.ops_per_sec(),
                  r.ns_per_access(),
                  static_cast<unsigned long long>(r.total_latency),
                  static_cast<unsigned long long>(r.net_messages),
                  static_cast<unsigned long long>(r.net_bytes),
                  i + 1 < results.size() ? "," : "");
    f << buf;
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  // --json=PATH is ours; everything else goes through the shared parser.
  std::string json_path = "BENCH_hotpath.json";
  bool json_set = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      json_set = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  auto res = bench::parse_options(static_cast<int>(args.size()), args.data());
  if (!res.ok) return bench::usage_error(res);
  if (json_set && (res.options.shard_set || res.options.shards > 0)) {
    // Sharded runs emit NDJSON records instead of the table/JSON outputs;
    // accepting --json and then writing nothing would silently break the
    // perf-trajectory contract the file documents.
    std::fprintf(stderr, "error: --json is not available in sharded runs "
                         "(the NDJSON stream carries the deterministic "
                         "counters)\n");
    return 2;
  }
  if (const auto rc = bench::maybe_orchestrate(
          static_cast<int>(args.size()), args.data(), res))
    return *rc;
  const bench::BenchOptions& opt = res.options;
  const bool stream = bench::stream_mode(opt);
  // Throughput timing wants an idle machine per config; the driver still
  // fans configurations out when --threads is raised (numbers then measure
  // aggregate throughput, not per-config latency — same for --shards).
  const std::uint64_t accesses = accesses_for(opt.scale);

  std::vector<HotConfig> configs;
  for (const auto& c : default_configs()) {
    if (!opt.node_counts.empty()) {
      bool want = false;
      for (const unsigned n : opt.node_counts) want |= (n == c.nodes);
      if (!want) continue;
    }
    configs.push_back(c);
  }

  // One spec point per configuration; the topology rides the variant
  // label so the config key reads "run/8p/Hypercube".
  std::vector<driver::SpecPoint> points;
  for (const auto& c : configs) {
    driver::SpecPoint pt;
    pt.nodes = c.nodes;
    pt.detector = topology_name(c.topo);
    pt.scale = opt.scale;
    pt.index = points.size();
    points.push_back(std::move(pt));
  }

  // Wall-clock is a live-only measurement (stderr + JSON trajectory);
  // the record-driven stdout table carries the deterministic counters.
  std::vector<HotResult> results;
  const int rc = bench::sharded_sweep<HotResult, HotResult>(
      points, opt, "perf_hotpath",
      [&](const driver::SpecPoint& pt) {
        return time_config(configs[pt.index], accesses);
      },
      [](const driver::SpecPoint&, HotResult&& r) { return r; },
      [&](const driver::SpecPoint& pt) {
        return stream_seed(configs[pt.index]);
      },
      [](const driver::SpecPoint&, const HotResult& r) {
        // Deterministic checksums only: wall-clock would break the
        // merged-vs-serial byte comparison.
        return shard::JsonObject()
            .add("accesses", r.accesses)
            .add("total_latency", r.total_latency)
            .add("net_messages", r.net_messages)
            .add("net_bytes", r.net_bytes)
            .str();
      },
      [&](const driver::SpecPoint&, const HotResult& r) {
        results.push_back(r);
      });
  if (stream) return rc;

  TableWriter wall({"topology", "nodes", "Maccess/s", "ns/access"});
  for (const auto& r : results) {
    wall.add_row({topology_name(r.cfg.topo), std::to_string(r.cfg.nodes),
                  TableWriter::fmt(r.ops_per_sec() / 1e6, 3),
                  TableWriter::fmt(r.ns_per_access(), 4)});
  }
  std::fprintf(stderr, "wall-clock (live-only, varies run to run):\n%s\n",
               wall.to_text().c_str());
  write_json(json_path, opt.scale, accesses, results);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return rc;
}
