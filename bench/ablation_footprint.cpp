// ablation_footprint.cpp — sensitivity to the footprint-table capacity.
// The paper uses a 32-vector footprint table (§III-A); this harness
// replays classification of the same recorded run with 8..128 vectors to
// show where capacity stops limiting either detector (a pure hardware-
// sizing question: no re-simulation needed).
//
// Simulations run on the experiment driver (--threads=N, --shard=i/N,
// --shards=N); the capacity replays execute inside the worker, reducing
// each recorded run to per-capacity rows carried in the stream record.
// The footprint renderer in src/report prints the table — live or
// offline.
#include <array>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"

namespace {

constexpr unsigned kCapacities[] = {8u, 16u, 32u, 64u, 128u};
constexpr std::size_t kNumCapacities = std::size(kCapacities);

struct CapacityRow {
  double bbv10 = 0.0;
  double ddv10 = 0.0;
  double bbv25 = 0.0;
  double ddv25 = 0.0;
};

using CapacityRows = std::array<CapacityRow, kNumCapacities>;

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {32};

  return bench::run_reduced_sweep<CapacityRows>(
      bench::named_apps(opt, {"FMM"}), opt.node_counts, opt,
      "ablation_footprint",
      [](const driver::SpecPoint&, sim::RunSummary&& run) {
        CapacityRows rows{};
        for (std::size_t i = 0; i < kNumCapacities; ++i) {
          analysis::CurveParams cp;
          cp.footprint_capacity = kCapacities[i];
          const auto bbv = analysis::bbv_cov_curve(run.procs, cp);
          const auto ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
          rows[i] = {analysis::cov_at_phases(bbv, 10),
                     analysis::cov_at_phases(ddv, 10),
                     analysis::cov_at_phases(bbv, 25),
                     analysis::cov_at_phases(ddv, 25)};
        }
        return rows;
      },
      [](const driver::SpecPoint&, const CapacityRows& rows) {
        shard::JsonArray out;
        for (std::size_t i = 0; i < kNumCapacities; ++i) {
          out.add_raw(shard::JsonObject()
                          .add("capacity", std::uint64_t{kCapacities[i]})
                          .add("bbv10", rows[i].bbv10)
                          .add("ddv10", rows[i].ddv10)
                          .add("bbv25", rows[i].bbv25)
                          .add("ddv25", rows[i].ddv25)
                          .str());
        }
        return shard::JsonObject().add_raw("rows", out.str()).str();
      });
}
