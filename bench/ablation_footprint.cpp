// ablation_footprint.cpp — sensitivity to the footprint-table capacity.
// The paper uses a 32-vector footprint table (§III-A); this harness
// replays classification of the same recorded run with 8..128 vectors to
// show where capacity stops limiting either detector (a pure hardware-
// sizing question: no re-simulation needed).
//
// Simulations run on the experiment driver (--threads=N); the capacity
// replays are pure analysis over the recorded traces and stay serial.
#include <cstdio>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {32};

  std::printf("== Ablation: footprint-table capacity (scale: %s) ==\n\n",
              apps::scale_name(opt.scale));

  const auto results =
      bench::run_sweep(bench::named_apps(opt, {"FMM"}), opt.node_counts, opt);
  for (const auto& res : results) {
    TableWriter t({"footprint vectors", "BBV CoV@10", "DDV CoV@10",
                   "BBV CoV@25", "DDV CoV@25"});
    for (const unsigned capacity : {8u, 16u, 32u, 64u, 128u}) {
      analysis::CurveParams cp;
      cp.footprint_capacity = capacity;
      const auto bbv = analysis::bbv_cov_curve(res.run.procs, cp);
      const auto ddv = analysis::bbv_ddv_cov_curve(res.run.procs, cp);
      t.add_row({std::to_string(capacity),
                 TableWriter::fmt(analysis::cov_at_phases(bbv, 10), 3),
                 TableWriter::fmt(analysis::cov_at_phases(ddv, 10), 3),
                 TableWriter::fmt(analysis::cov_at_phases(bbv, 25), 3),
                 TableWriter::fmt(analysis::cov_at_phases(ddv, 25), 3)});
    }
    std::printf("-- %s, %uP --\n%s\n", res.app->name.c_str(),
                res.point.nodes, t.to_text().c_str());
  }
  return 0;
}
