// bench_util.hpp — shared plumbing for the figure/table harnesses: flag
// parsing, parallel/sharded sweep execution through the experiment driver,
// and the record→renderer bridge that makes live human output a replay of
// the same stream records `dsm_report render` consumes offline.
//
// Every harness runs its sweep through sharded_sweep()/run_reduced_sweep()
// and therefore supports three execution modes from one code path:
//
//   * default            — in-process sweep on --threads=N workers; each
//                          reduced configuration is serialized to its
//                          stream record and immediately replayed through
//                          the harness's renderer (src/report registry),
//                          so the live tables are byte-identical to
//                          `dsm_report render` over the collected records
//                          — and to the old buffered-vector loops at any
//                          thread count.
//   * --shard=i/N        — shard worker: runs only its round-robin slice
//                          of the spec and writes one NDJSON record per
//                          completed configuration to stdout (spec order,
//                          flushed per record); human output is suppressed.
//   * --shards=N         — orchestrator: forks N workers of this binary
//                          with --shard=i/N, merges their streams in spec
//                          order onto stdout. Merged output is
//                          byte-identical to `--shards=1` (and to an
//                          offline `dsm_report merge` over the workers'
//                          collected files): records carry only
//                          configuration-content-derived, deterministic
//                          values.
//
// The in-worker reducer is the memory story: each RunSummary (which holds
// every interval record of every processor) is collapsed to the harness's
// curve/table rows on the worker that simulated it and destroyed there —
// nothing downstream ever holds a raw trace.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/curve.hpp"
#include "apps/registry.hpp"
#include "common/config.hpp"
#include "driver/experiment_runner.hpp"
#include "driver/sweep_spec.hpp"
#include "report/record_reader.hpp"
#include "report/renderer.hpp"
#include "shard/coordinator.hpp"
#include "shard/fleet_msg.hpp"
#include "shard/heartbeat.hpp"
#include "shard/lease.hpp"
#include "shard/orchestrator.hpp"
#include "shard/pull_worker.hpp"
#include "shard/shard_plan.hpp"
#include "shard/stream_sink.hpp"
#include "shard/transport.hpp"
#include "sim/machine.hpp"

namespace dsm::bench {

struct BenchOptions {
  apps::Scale scale = apps::Scale::kPaper;  ///< Table II inputs fit in minutes
  std::vector<std::string> app_names;  ///< empty = all four paper apps
  std::vector<unsigned> node_counts;   ///< empty = the bench's defaults
  std::string csv_dir;                 ///< when set, also dump CSV files
  /// Coherence protocols to sweep (--protocol=msi,mesi,moesi). Empty =
  /// protocol not swept: the machines run the default (MESI) and records
  /// carry no protocol field. parse_options() normalizes an explicit
  /// {"mesi"} to empty, so --protocol=mesi is byte-identical to no flag.
  std::vector<std::string> protocols;
  /// Batch sizes to sweep (--batch=1,4,16 — a comma list). Empty = batch
  /// not swept: no axis, no envelope field, historical seeds intact.
  std::vector<unsigned> batches;
  /// Batch size as a plain execution knob (--batch=N, a single value):
  /// every machine in the sweep runs MachineConfig::batch_size = N with
  /// nothing else changed — seeds, records, and rendered output are
  /// byte-identical to --batch=1, which is the point (batching never
  /// changes simulated results). parse_options() normalizes a single
  /// --batch=1 to exactly the no-flag state.
  unsigned batch_size = 1;
  unsigned threads = 1;                ///< sweep workers; 0 = one per core
  /// --obs-stats: run every machine with the deterministic metrics
  /// registry on and attach the snapshot to each record as the envelope's
  /// "obs" field. Off by default — records stay byte-identical to seeds.
  bool obs_stats = false;
  /// --trace=FILE: dump each machine's binary event trace here (multi-
  /// point sweeps suffix ".<spec_index>"). Empty = tracing off.
  std::string trace_path;
  /// --obs-intervals: run every machine with phase-attributed interval
  /// capture (implies the metrics registry) and attach the timeline to
  /// each record as the envelope's "obs_intervals" field (`dsm_report
  /// timeline`). Off by default — records stay byte-identical to seeds.
  bool obs_intervals = false;
  /// --heartbeat=FILE: append worker progress heartbeats here (stream
  /// mode only; src/shard/heartbeat.hpp). The orchestrator sets this per
  /// worker as FILE.<shard_index> when the flag is passed to --shards=N.
  std::string heartbeat_path;
  bool verbose = false;
  shard::ShardPlan shard;              ///< --shard=i/N (worker mode)
  bool shard_set = false;              ///< --shard appeared: stream mode
  unsigned shards = 0;                 ///< --shards=N (coordinator); 0 = off
  /// --pull=fd:K|host:port: pull-worker mode — connect to a fleet
  /// coordinator, lease spec-index ranges, stream records back over the
  /// transport. Human output is suppressed like --shard. Empty = off.
  std::string pull_endpoint;
  /// --listen=PORT (with --shards=N): the coordinator accepts its N
  /// workers over TCP instead of forking them (multi-host fleets; start
  /// workers with --pull=host:PORT). 0 = fork mode.
  unsigned listen_port = 0;
  /// --resume=FILE (with --shards=N): scan this NDJSON store, re-emit its
  /// complete records, and lease only the gap spec indices.
  std::string resume_store;
  /// --lease-log=FILE (with --shards=N): append the coordinator's lease
  /// ledger (leased/retrying/dead/done per worker) as NDJSON; view with
  /// `dsm_report progress --lease=FILE`.
  std::string lease_log;
  /// --inject-fault=kind@spec_index (with --shards=N): deterministic
  /// chaos harness — the coordinator arms the fault on the first lease
  /// containing spec_index and the worker dies that way, exactly once.
  shard::FaultKind fault = shard::FaultKind::kNone;
  std::size_t fault_spec = 0;
  /// Fleet timing/retry knobs: --lease-timeout-ms, --hb-interval-ms,
  /// --max-respawns, --backoff-ms, --lease-chunk.
  shard::FleetTuning tuning;
};

/// True when this invocation is a shard or pull worker: the sweep emits
/// NDJSON records (to stdout for --shard, over the transport for --pull)
/// and the harness must suppress its human output (headers, tables, CSV)
/// — a merged multi-process stream has no place for per-worker prose.
inline bool stream_mode(const BenchOptions& opt) {
  return opt.shard_set || !opt.pull_endpoint.empty();
}

/// Outcome of command-line parsing. Mains check `ok` and bail with
/// usage_error() on failure instead of the library calling exit() — which
/// kept parse_options untestable and would kill a multi-sweep driver
/// mid-flight.
struct ParseResult {
  BenchOptions options;
  bool ok = true;
  bool scale_set = false;  ///< --scale appeared (mains with non-paper
                           ///< defaults check this before overriding)
  std::string error;  ///< set when !ok
};

/// Parses --scale=paper|bench|test, --apps=LU,FMM,..., --nodes=2,8,32,
/// --csv=DIR, --threads=N (0 = one per hardware thread), --shard=i/N,
/// --shards=N, --verbose. Ignores google-benchmark-style flags it does
/// not know. Never exits; malformed input comes back as
/// ParseResult{ok=false, error}.
ParseResult parse_options(int argc, char** argv);

/// The flag reference printed under parse errors.
const char* usage_text();

/// Prints `r.error` plus usage to stderr; returns the conventional exit
/// code 2 so mains can `return bench::usage_error(r);`.
int usage_error(const ParseResult& r);

/// Coordinator entry point, called by every main straight after parsing:
/// when --shards=N was given, runs the pull-based fleet coordinator
/// (shard/coordinator.hpp) — N re-invocations of this binary as
/// --pull=fd:3 workers over socketpairs (or N TCP workers with
/// --listen), dynamic spec-index leases, heartbeat-deadline failure
/// detection with bounded respawn, optional resume-from-store and
/// deterministic fault injection — and merges the record streams in spec
/// order onto stdout, byte-identical to `--shards=1`. Returns the exit
/// code for main to return, or nullopt when not in coordinator mode.
/// Workers inherit --threads: total parallelism is shards × threads.
std::optional<int> maybe_orchestrate(int argc, char** argv,
                                     const ParseResult& parsed);

/// Runs `app` on a Table I machine with `nodes` processors at `scale`,
/// with the sampling interval scaled to the workload per DESIGN.md and the
/// machine's RNG streams seeded from `seed` (pass spec_seed(point) inside
/// sweeps so parallel and serial runs agree bit-for-bit). `protocol`
/// selects the coherence-policy tables the fabric runs (default MESI);
/// `batch_size` sets the Machine→fabric gather size (host-side only —
/// simulated output is identical for every value).
/// `obs` configures the observability layer (metrics registry / event
/// trace); the default runs with everything off, which is byte-identical
/// to the pre-observability simulator.
sim::RunSummary run_workload(const apps::AppInfo& app, apps::Scale scale,
                             unsigned nodes, bool verbose,
                             std::uint64_t seed,
                             Protocol protocol = Protocol::kMesi,
                             unsigned batch_size = 1,
                             const ObsConfig& obs = ObsConfig{});

/// The per-point ObsConfig for opt: stats from --obs-stats, trace from
/// --trace=FILE (suffixed ".<spec_index>" when the sweep has more than
/// one point, so dumps never overwrite each other).
ObsConfig obs_config_for_point(const BenchOptions& opt,
                               const driver::SpecPoint& pt,
                               bool multi_point);

/// SpecPoint::protocol -> Protocol: empty means "not swept" (MESI).
/// Throws on a name protocol_from_name() rejects.
Protocol protocol_of_point(const driver::SpecPoint& pt);

/// Apps selected by --apps, in Table II order (default: all four).
std::vector<const apps::AppInfo*> selected_apps(const BenchOptions& opt);

/// Apps in command-line order with per-bench defaults (the ablation
/// harnesses iterate in the order the user named them).
std::vector<const apps::AppInfo*> named_apps(
    const BenchOptions& opt, const std::vector<std::string>& defaults);

/// One completed configuration of an app × nodes sweep, in spec order.
struct WorkloadResult {
  driver::SpecPoint point;
  const apps::AppInfo* app = nullptr;
  sim::RunSummary run;
};

/// Expands `apps` × `nodes` into a SweepSpec, simulates every
/// configuration on opt.threads workers (deterministic per-point seeds),
/// and returns the buffered results in spec order. Retained for callers
/// that genuinely need whole RunSummaries side by side; sweeping
/// harnesses use run_reduced_sweep() instead, which never buffers raw
/// traces and gains --shard/--shards for free.
std::vector<WorkloadResult> run_sweep(
    const std::vector<const apps::AppInfo*>& apps,
    const std::vector<unsigned>& nodes, const BenchOptions& opt);

/// Serializes a CoV curve as the metrics-array layout the offline
/// renderers rebuild tables and CSV exports from:
/// [[mean_phases, mean_cov, tuning_fraction, bbv_threshold, dds], ...].
std::string curve_json(const std::vector<analysis::CurvePoint>& curve);

/// Best-effort JSON object describing the measuring host — cpu model
/// (/proc/cpuinfo), online core count, and cpufreq governor when
/// readable ("unknown" otherwise): {"cpu": "...", "cores": N,
/// "governor": "..."}. Written into every BENCH_*.json so wall-clock
/// trajectory points recorded on different machines stay interpretable.
std::string host_context_json();

/// Pull-worker handshake for an empty sweep: connect, announce total 0,
/// drain the fin. Without this a coordinator would wait out its
/// handshake deadline on a worker that had nothing to do.
int pull_empty_sweep(const BenchOptions& opt, const char* bench_name);

/// Exit path for a pull worker that lost its coordinator mid-lease:
/// stderr diagnostic, then _exit(1) — there is nobody left to stream
/// records to, and the coordinator side already treats the closed
/// connection as this worker's death.
[[noreturn]] void pull_abort(const char* msg);

/// Builds the full stream record for one reduced configuration: context
/// envelope (the spec point's content plus the scale) wrapping the
/// harness metrics under "m". This is THE formatting point for records —
/// stream mode emits exactly these bytes and the live renderer path
/// replays exactly these bytes, which is what makes the two byte-compare.
template <typename R>
shard::StreamRecord make_stream_record(
    const driver::SpecPoint& pt, const R& reduced,
    const std::function<std::uint64_t(const driver::SpecPoint&)>& seed_of,
    const std::function<std::string(const driver::SpecPoint&, const R&)>&
        metrics,
    const std::string& obs_json = {},
    const std::string& obs_intervals_json = {}) {
  shard::StreamRecord rec;
  rec.spec_index = pt.index;
  rec.key = driver::spec_label(pt);
  rec.seed = seed_of(pt);
  shard::JsonObject ctx;
  ctx.add("app", pt.app)
      .add("nodes", static_cast<std::uint64_t>(pt.nodes))
      .add("variant", pt.detector)
      .add("param", pt.threshold);
  // Protocol/batch ride in the envelope only when the sweep varies them,
  // so every pre-existing stream stays byte-identical (readers default
  // the absent fields to "mesi" / 1).
  if (!pt.protocol.empty()) ctx.add("protocol", pt.protocol);
  if (pt.batch != 0) ctx.add("batch", static_cast<std::uint64_t>(pt.batch));
  ctx.add("scale", std::string(apps::scale_name(pt.scale)));
  // The deterministic metrics snapshot, present only under --obs-stats —
  // same optional-field precedent as protocol/batch above. Likewise the
  // phase-attributed interval timeline under --obs-intervals.
  if (!obs_json.empty()) ctx.add_raw("obs", obs_json);
  if (!obs_intervals_json.empty())
    ctx.add_raw("obs_intervals", obs_intervals_json);
  rec.metrics = ctx.add_raw("m", metrics(pt, reduced)).str();
  return rec;
}

/// The generic sharded, streaming sweep core. `run` simulates one point
/// and `reduce` collapses the raw result, both on a pool worker (the raw
/// result is destroyed in the worker — this is the Reducer hook that
/// bounds per-configuration memory). Then, in spec order:
///   * stream mode: one NDJSON record per point — key spec_label(pt),
///     seed seed_of(pt), metrics wrapped by make_stream_record — onto
///     stdout;
///   * otherwise: the record is replayed through the renderer registered
///     for `bench_name` in src/report (the single formatting point for
///     human output, shared with `dsm_report render`); `live_observe`,
///     when set, sees each reduced result first — for live-only side
///     products like perf_hotpath's wall-clock JSON, which have no place
///     in deterministic records.
/// `obs_of`, when set, supplies the record's optional "obs" envelope
/// field (the machine's deterministic metrics snapshot); return "" for
/// no field. `obs_intervals_of` does the same for the optional
/// "obs_intervals" field (the phase-attributed interval timeline).
/// Returns the exit code (the renderer's finish() verdict; 0 in stream
/// mode). Template arguments are explicit at call sites (lambdas do not
/// deduce through std::function).
template <typename Raw, typename R>
int sharded_sweep(
    const std::vector<driver::SpecPoint>& points, const BenchOptions& opt,
    const char* bench_name,
    const std::function<Raw(const driver::SpecPoint&)>& run,
    const std::function<R(const driver::SpecPoint&, Raw&&)>& reduce,
    const std::function<std::uint64_t(const driver::SpecPoint&)>& seed_of,
    const std::function<std::string(const driver::SpecPoint&, const R&)>&
        metrics,
    const std::function<void(const driver::SpecPoint&, const R&)>&
        live_observe = {},
    const std::function<std::string(const driver::SpecPoint&, const R&)>&
        obs_of = {},
    const std::function<std::string(const driver::SpecPoint&, const R&)>&
        obs_intervals_of = {}) {
  const auto local = opt.shard.select(points);
  const driver::ExperimentRunner runner(opt.threads);
  const std::function<Raw(const driver::SpecPoint&)> guarded =
      [&](const driver::SpecPoint& pt) -> Raw {
    try {
      return run(pt);
    } catch (const std::exception& e) {
      // Name the configuration: in a parallel sweep "which point failed"
      // is otherwise lost.
      throw std::runtime_error(driver::spec_label(pt) + ": " + e.what());
    }
  };
  if (!opt.pull_endpoint.empty()) {
    // Pull-worker mode: lease spec-index ranges from the coordinator and
    // stream each completed record back over the transport — the same
    // formatted bytes --shard workers write to stdout, which is what
    // keeps the coordinator's merged output byte-identical to --shards=1.
    const auto ep = shard::parse_endpoint(opt.pull_endpoint);
    if (!ep)
      throw std::runtime_error("bad --pull endpoint: " + opt.pull_endpoint);
    shard::PullWorker worker(*ep, bench_name, points.size());
    if (!worker.ok()) return 1;
    while (const auto lease = worker.next_lease()) {
      std::vector<driver::SpecPoint> slice;
      for (const auto& pt : points)
        if (pt.index >= lease->lo && pt.index < lease->hi)
          slice.push_back(pt);
      const shard::FaultKind fault = worker.fault();
      const std::size_t fault_spec = worker.fault_spec();
      runner.map_reduce<Raw, R>(
          slice, guarded, reduce,
          [&](const driver::SpecPoint& pt, R&& r) {
            const std::string line = shard::format_record(
                bench_name,
                make_stream_record<R>(
                    pt, r, seed_of, metrics,
                    obs_of ? obs_of(pt, r) : std::string(),
                    obs_intervals_of ? obs_intervals_of(pt, r)
                                     : std::string()));
            if (fault != shard::FaultKind::kNone && pt.index == fault_spec) {
              // The coordinator armed a deterministic fault on this very
              // spec index (chaos harness) — die the requested way.
              switch (fault) {
                case shard::FaultKind::kWorkerExit: worker.fault_exit();
                case shard::FaultKind::kWorkerHang: worker.fault_hang();
                case shard::FaultKind::kTruncatedRecord:
                  worker.fault_truncate(line);
                case shard::FaultKind::kDroppedHeartbeat:
                  worker.drop_heartbeats();
                  break;
                default: break;
              }
            }
            if (!worker.emit_record(line, pt.index))
              pull_abort("coordinator connection lost mid-lease");
          });
    }
    return worker.transport_lost() ? 1 : 0;
  }
  if (stream_mode(opt)) {
    shard::StreamSink sink(stdout, bench_name);
    // Progress telemetry on its own channel (heartbeat.hpp): the result
    // stream on stdout carries no trace of it, so merged output stays
    // byte-identical with heartbeats on or off.
    shard::HeartbeatEmitter heartbeat(opt.heartbeat_path, bench_name,
                                      opt.shard.label(), local.size());
    runner.map_reduce<Raw, R>(
        local, guarded, reduce, [&](const driver::SpecPoint& pt, R&& r) {
          sink.emit(make_stream_record<R>(
              pt, r, seed_of, metrics,
              obs_of ? obs_of(pt, r) : std::string(),
              obs_intervals_of ? obs_intervals_of(pt, r) : std::string()));
          heartbeat.progress(static_cast<std::int64_t>(pt.index));
        });
    return 0;
  }
  report::RenderOptions ropt;
  ropt.csv_dir = opt.csv_dir;
  const auto renderer = report::make_renderer(bench_name, ropt);
  if (renderer == nullptr)
    throw std::logic_error(std::string("no renderer registered for '") +
                           bench_name + "' (src/report/renderers.cpp)");
  runner.map_reduce<Raw, R>(
      local, guarded, reduce, [&](const driver::SpecPoint& pt, R&& r) {
        if (live_observe) live_observe(pt, r);
        const std::string line = shard::format_record(
            bench_name,
            make_stream_record<R>(
                pt, r, seed_of, metrics,
                obs_of ? obs_of(pt, r) : std::string(),
                obs_intervals_of ? obs_intervals_of(pt, r) : std::string()));
        report::RecordView view;
        std::string err;
        if (!report::read_record(line, &view, &err))
          throw std::logic_error(
              "internal: generated stream record failed validation: " + err);
        renderer->record(view);
      });
  return renderer->finish();
}

/// sharded_sweep specialization for the standard app × nodes product on
/// Table I machines: bench_util supplies the run step (run_workload with
/// spec_seed seeds); the harness supplies only its reducer and metrics
/// serializer (its renderer lives in the src/report registry).
template <typename R>
int run_reduced_sweep(
    const std::vector<const apps::AppInfo*>& apps_selected,
    const std::vector<unsigned>& nodes, const BenchOptions& opt,
    const char* bench_name,
    const std::function<R(const driver::SpecPoint&, sim::RunSummary&&)>&
        reduce,
    const std::function<std::string(const driver::SpecPoint&, const R&)>&
        metrics,
    const std::function<void(const driver::SpecPoint&, const R&)>&
        live_observe = {}) {
  // An empty selection is an empty sweep (the pre-refactor loops printed
  // zero rows) — never a default "" spec point. A pull worker must still
  // tell its coordinator so, or the fleet would wait out a deadline.
  if (apps_selected.empty() || nodes.empty())
    return opt.pull_endpoint.empty() ? 0
                                     : pull_empty_sweep(opt, bench_name);
  driver::SweepSpec spec;
  for (const auto* app : apps_selected) spec.apps.push_back(app->name);
  spec.node_counts = nodes;
  spec.protocols = opt.protocols;
  spec.batches = opt.batches;
  spec.scale = opt.scale;
  const auto points = spec.expand();
  const bool multi = points.size() > 1;
  // Carry the machine's deterministic metrics snapshot past the harness
  // reducer, which neither knows nor cares about it; the envelope layer
  // attaches it as the record's "obs" field. Always "" when --obs-stats
  // is off, so the wrapper changes no bytes in the default mode.
  struct Wrapped {
    R r;
    std::string obs;
    std::string obs_intervals;
  };
  return sharded_sweep<sim::RunSummary, Wrapped>(
      points, opt, bench_name,
      [&opt, multi](const driver::SpecPoint& pt) {
        return run_workload(apps::app_by_name(pt.app), pt.scale, pt.nodes,
                            opt.verbose, driver::spec_seed(pt),
                            protocol_of_point(pt),
                            pt.batch != 0 ? pt.batch : opt.batch_size,
                            obs_config_for_point(opt, pt, multi));
      },
      [&reduce](const driver::SpecPoint& pt, sim::RunSummary&& run) {
        std::string obs = std::move(run.obs_json);
        std::string intervals = std::move(run.obs_intervals_json);
        return Wrapped{reduce(pt, std::move(run)), std::move(obs),
                       std::move(intervals)};
      },
      [](const driver::SpecPoint& pt) { return driver::spec_seed(pt); },
      [&metrics](const driver::SpecPoint& pt, const Wrapped& w) {
        return metrics(pt, w.r);
      },
      live_observe
          ? std::function<void(const driver::SpecPoint&, const Wrapped&)>(
                [&live_observe](const driver::SpecPoint& pt,
                                const Wrapped& w) { live_observe(pt, w.r); })
          : std::function<void(const driver::SpecPoint&, const Wrapped&)>(),
      [](const driver::SpecPoint&, const Wrapped& w) { return w.obs; },
      [](const driver::SpecPoint&, const Wrapped& w) {
        return w.obs_intervals;
      });
}

}  // namespace dsm::bench
