// bench_util.hpp — shared plumbing for the figure/table harnesses: flag
// parsing, parallel sweep execution through the experiment driver, and
// curve printing in a gnuplot-friendly layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/curve.hpp"
#include "apps/registry.hpp"
#include "common/config.hpp"
#include "driver/experiment_runner.hpp"
#include "driver/sweep_spec.hpp"
#include "sim/machine.hpp"

namespace dsm::bench {

struct BenchOptions {
  apps::Scale scale = apps::Scale::kPaper;  ///< Table II inputs fit in minutes
  std::vector<std::string> app_names;  ///< empty = all four paper apps
  std::vector<unsigned> node_counts;   ///< empty = the bench's defaults
  std::string csv_dir;                 ///< when set, also dump CSV files
  unsigned threads = 1;                ///< sweep workers; 0 = one per core
  bool verbose = false;
};

/// Outcome of command-line parsing. Mains check `ok` and bail with
/// usage_error() on failure instead of the library calling exit() — which
/// kept parse_options untestable and would kill a multi-sweep driver
/// mid-flight.
struct ParseResult {
  BenchOptions options;
  bool ok = true;
  bool scale_set = false;  ///< --scale appeared (mains with non-paper
                           ///< defaults check this before overriding)
  std::string error;  ///< set when !ok
};

/// Parses --scale=paper|bench|test, --apps=LU,FMM,..., --nodes=2,8,32,
/// --csv=DIR, --threads=N (0 = one per hardware thread), --verbose.
/// Ignores google-benchmark-style flags it does not know. Never exits;
/// malformed input comes back as ParseResult{ok=false, error}.
ParseResult parse_options(int argc, char** argv);

/// The flag reference printed under parse errors.
const char* usage_text();

/// Prints `r.error` plus usage to stderr; returns the conventional exit
/// code 2 so mains can `return bench::usage_error(r);`.
int usage_error(const ParseResult& r);

/// Runs `app` on a Table I machine with `nodes` processors at `scale`,
/// with the sampling interval scaled to the workload per DESIGN.md and the
/// machine's RNG streams seeded from `seed` (pass spec_seed(point) inside
/// sweeps so parallel and serial runs agree bit-for-bit).
sim::RunSummary run_workload(const apps::AppInfo& app, apps::Scale scale,
                             unsigned nodes, bool verbose,
                             std::uint64_t seed);

/// Apps selected by --apps, in Table II order (default: all four).
std::vector<const apps::AppInfo*> selected_apps(const BenchOptions& opt);

/// Apps in command-line order with per-bench defaults (the ablation
/// harnesses iterate in the order the user named them).
std::vector<const apps::AppInfo*> named_apps(
    const BenchOptions& opt, const std::vector<std::string>& defaults);

/// One completed configuration of an app × nodes sweep, in spec order.
struct WorkloadResult {
  driver::SpecPoint point;
  const apps::AppInfo* app = nullptr;
  sim::RunSummary run;
};

/// Expands `apps` × `nodes` into a SweepSpec, simulates every
/// configuration on opt.threads workers (deterministic per-point seeds),
/// and returns the results in spec order — the parallel replacement for
/// the old serial for-app/for-nodes loops.
std::vector<WorkloadResult> run_sweep(
    const std::vector<const apps::AppInfo*>& apps,
    const std::vector<unsigned>& nodes, const BenchOptions& opt);

/// Prints a CoV curve as "phases cov tuning%" rows, subsampled to at most
/// `max_rows` (the full resolution goes to CSV when enabled).
void print_curve(const std::string& title,
                 const std::vector<analysis::CurvePoint>& curve,
                 std::size_t max_rows = 16);

/// Writes the full-resolution curve to `<csv_dir>/<name>.csv` when the
/// option is set.
void maybe_write_csv(const BenchOptions& opt, const std::string& name,
                     const std::vector<analysis::CurvePoint>& curve);

}  // namespace dsm::bench
