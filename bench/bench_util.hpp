// bench_util.hpp — shared plumbing for the figure/table harnesses: flag
// parsing, app runs with properly scaled sampling intervals, and curve
// printing in a gnuplot-friendly layout.
#pragma once

#include <string>
#include <vector>

#include "analysis/curve.hpp"
#include "apps/registry.hpp"
#include "common/config.hpp"
#include "sim/machine.hpp"

namespace dsm::bench {

struct BenchOptions {
  apps::Scale scale = apps::Scale::kPaper;  ///< Table II inputs fit in minutes
  std::vector<std::string> app_names;  ///< empty = all four paper apps
  std::vector<unsigned> node_counts;   ///< empty = the bench's defaults
  std::string csv_dir;                 ///< when set, also dump CSV files
  bool verbose = false;
};

/// Parses --scale=paper|bench|test, --apps=LU,FMM,..., --nodes=2,8,32,
/// --csv=DIR, --verbose. Ignores google-benchmark-style flags it does not
/// know. Exits with a usage message on malformed input.
BenchOptions parse_options(int argc, char** argv);

/// Runs `app` on a Table I machine with `nodes` processors at `scale`,
/// with the sampling interval scaled to the workload per DESIGN.md.
sim::RunSummary run_workload(const apps::AppInfo& app, apps::Scale scale,
                             unsigned nodes, bool verbose);

/// Prints a CoV curve as "phases cov tuning%" rows, subsampled to at most
/// `max_rows` (the full resolution goes to CSV when enabled).
void print_curve(const std::string& title,
                 const std::vector<analysis::CurvePoint>& curve,
                 std::size_t max_rows = 16);

/// Writes the full-resolution curve to `<csv_dir>/<name>.csv` when the
/// option is set.
void maybe_write_csv(const BenchOptions& opt, const std::string& name,
                     const std::vector<analysis::CurvePoint>& curve);

}  // namespace dsm::bench
