// micro_detector.cpp — google-benchmark microbenchmarks of the detector
// hardware operations, quantifying the per-interval work the paper argues
// is "modest in size and complexity" (§I): BBV accumulator updates,
// Manhattan distances, footprint-table searches, DDV access recording, and
// the end-of-interval DDS gather/computation.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "common/config.hpp"
#include "network/topology.hpp"
#include "phase/bbv.hpp"
#include "phase/ddv.hpp"
#include "phase/footprint.hpp"

namespace {

using namespace dsm;

void BM_BbvRecordBranch(benchmark::State& state) {
  phase::BbvAccumulator acc(32, 1u << 16);
  Addr pc = 0x400000;
  for (auto _ : state) {
    acc.record_branch(pc, 12);
    pc += 64;
    benchmark::DoNotOptimize(acc.total_weight());
  }
}
BENCHMARK(BM_BbvRecordBranch);

void BM_BbvSnapshot(benchmark::State& state) {
  phase::BbvAccumulator acc(static_cast<unsigned>(state.range(0)), 1u << 16);
  for (unsigned i = 0; i < 1000; ++i) acc.record_branch(i * 64, i % 13 + 1);
  for (auto _ : state) {
    auto v = acc.snapshot();
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_BbvSnapshot)->Arg(16)->Arg(32)->Arg(64);

void BM_ManhattanDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  phase::BbvVector a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint32_t>(i * 37 % 2048);
    b[i] = static_cast<std::uint32_t>(i * 91 % 2048);
  }
  for (auto _ : state) benchmark::DoNotOptimize(phase::manhattan(a, b));
}
BENCHMARK(BM_ManhattanDistance)->Arg(16)->Arg(32)->Arg(64);

void BM_FootprintClassify(benchmark::State& state) {
  const auto capacity = static_cast<unsigned>(state.range(0));
  phase::FootprintTable table(capacity, /*use_dds=*/true);
  // Pre-populate with distinct signatures.
  phase::BbvVector v(32, 0);
  for (unsigned e = 0; e < capacity; ++e) {
    v[e % 32] = 65536;
    table.classify(v, e * 1000.0, 0, 0.0);
    v[e % 32] = 0;
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    v[i % 32] = 60000;
    benchmark::DoNotOptimize(table.classify(v, (i % 7) * 1500.0, 8000, 500.0));
    v[i % 32] = 0;
    ++i;
  }
}
BENCHMARK(BM_FootprintClassify)->Arg(8)->Arg(32)->Arg(64);

void BM_DdvRecordAccess(benchmark::State& state) {
  const auto nodes = static_cast<unsigned>(state.range(0));
  net::TopologyModel topo(Topology::kHypercube, nodes);
  phase::DdvFabric ddv(nodes, topo.ddv_distance_matrix());
  NodeId j = 0;
  for (auto _ : state) {
    ddv.record_access(0, j);
    j = (j + 1) % nodes;
  }
}
BENCHMARK(BM_DdvRecordAccess)->Arg(2)->Arg(8)->Arg(32);

void BM_DdvGather(benchmark::State& state) {
  const auto nodes = static_cast<unsigned>(state.range(0));
  net::TopologyModel topo(Topology::kHypercube, nodes);
  phase::DdvFabric ddv(nodes, topo.ddv_distance_matrix());
  for (NodeId p = 0; p < nodes; ++p)
    for (unsigned k = 0; k < 64; ++k)
      ddv.record_access(p, (p + k) % nodes);
  for (auto _ : state) {
    auto g = ddv.gather(0);
    benchmark::DoNotOptimize(g.dds);
    ddv.record_access(0, 1);  // keep state moving
  }
}
BENCHMARK(BM_DdvGather)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark consumes its
// own --benchmark* flags first, then the shared sweep flags (--threads=N
// and friends) are parsed through bench_util for driver uniformity — a
// parse error exits with usage instead of being silently ignored.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const auto parsed = dsm::bench::parse_options(argc, argv);
  if (!parsed.ok) return dsm::bench::usage_error(parsed);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
