// micro_detector.cpp — microbenchmarks of the detector hardware
// operations, quantifying the per-interval work the paper argues is
// "modest in size and complexity" (§I): BBV accumulator updates,
// Manhattan distances, footprint-table searches, DDV access recording,
// and the end-of-interval DDS gather/computation.
//
// Runs each kernel × size as a spec point on the experiment driver, so
// kernel timings parallelize (--threads=N) and shard (--shard/--shards).
// Each kernel returns a deterministic checksum: it keeps the optimizer
// honest and is the record's payload (wall-clock never enters stream
// records, so merged sharded output byte-compares against serial). The
// stdout table is record-driven (the micro_detector renderer in
// src/report, shared with `dsm_report render`); wall-clock timings are a
// live-only measurement and print to stderr.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "network/topology.hpp"
#include "phase/bbv.hpp"
#include "phase/ddv.hpp"
#include "phase/footprint.hpp"

namespace {

using namespace dsm;

std::uint64_t bm_bbv_record_branch(unsigned, std::uint64_t iters) {
  phase::BbvAccumulator acc(32, 1u << 16);
  Addr pc = 0x400000;
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc.record_branch(pc, 12);
    pc += 64;
  }
  return acc.total_weight();
}

std::uint64_t bm_bbv_snapshot(unsigned entries, std::uint64_t iters) {
  phase::BbvAccumulator acc(entries, 1u << 16);
  for (unsigned i = 0; i < 1000; ++i) acc.record_branch(i * 64, i % 13 + 1);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto v = acc.snapshot();
    sum += v[i % entries];
  }
  return sum;
}

std::uint64_t bm_manhattan(unsigned n, std::uint64_t iters) {
  phase::BbvVector a(n), b(n);
  for (unsigned i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint32_t>(i * 37 % 2048);
    b[i] = static_cast<std::uint32_t>(i * 91 % 2048);
  }
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    sum += phase::manhattan(a, b);
    a[i % n] ^= 1;  // keep the inputs moving so the call cannot hoist
  }
  return sum;
}

std::uint64_t bm_footprint_classify(unsigned capacity, std::uint64_t iters) {
  phase::FootprintTable table(capacity, /*use_dds=*/true);
  // Pre-populate with distinct signatures.
  phase::BbvVector v(32, 0);
  for (unsigned e = 0; e < capacity; ++e) {
    v[e % 32] = 65536;
    table.classify(v, e * 1000.0, 0, 0.0);
    v[e % 32] = 0;
  }
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    v[i % 32] = 60000;
    const auto c = table.classify(v, (i % 7) * 1500.0, 8000, 500.0);
    v[i % 32] = 0;
    sum += c.phase + c.bbv_distance;
  }
  return sum;
}

std::uint64_t bm_ddv_record_access(unsigned nodes, std::uint64_t iters) {
  net::TopologyModel topo(Topology::kHypercube, nodes);
  phase::DdvFabric ddv(nodes, topo.ddv_distance_matrix());
  NodeId j = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    ddv.record_access(0, j);
    j = (j + 1) % nodes;
  }
  const auto g = ddv.gather(0);
  std::uint64_t sum = 0;
  for (const auto f : g.own_f) sum += f;
  return sum;
}

std::uint64_t bm_ddv_gather(unsigned nodes, std::uint64_t iters) {
  net::TopologyModel topo(Topology::kHypercube, nodes);
  phase::DdvFabric ddv(nodes, topo.ddv_distance_matrix());
  for (NodeId p = 0; p < nodes; ++p)
    for (unsigned k = 0; k < 64; ++k)
      ddv.record_access(p, (p + k) % nodes);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto g = ddv.gather(0);
    sum += static_cast<std::uint64_t>(g.dds);
    ddv.record_access(0, 1);  // keep state moving
  }
  return sum;
}

struct Kernel {
  const char* name;
  unsigned arg;  ///< size axis (0 = none): entries, capacity, or nodes
  std::uint64_t (*body)(unsigned arg, std::uint64_t iters);
  double iters_scale = 1.0;  ///< trims the heavyweight kernels
};

const std::vector<Kernel>& kernels() {
  static const std::vector<Kernel> kKernels = {
      {"bbv_record_branch", 0, bm_bbv_record_branch},
      {"bbv_snapshot", 16, bm_bbv_snapshot},
      {"bbv_snapshot", 32, bm_bbv_snapshot},
      {"bbv_snapshot", 64, bm_bbv_snapshot},
      {"manhattan", 16, bm_manhattan},
      {"manhattan", 32, bm_manhattan},
      {"manhattan", 64, bm_manhattan},
      {"footprint_classify", 8, bm_footprint_classify},
      {"footprint_classify", 32, bm_footprint_classify},
      {"footprint_classify", 64, bm_footprint_classify},
      {"ddv_record_access", 2, bm_ddv_record_access},
      {"ddv_record_access", 8, bm_ddv_record_access},
      {"ddv_record_access", 32, bm_ddv_record_access},
      // The gather is O(nodes^2) per call; scale its count down so the
      // paper-scale run stays minutes, not hours.
      {"ddv_gather", 2, bm_ddv_gather, 0.1},
      {"ddv_gather", 8, bm_ddv_gather, 0.1},
      {"ddv_gather", 32, bm_ddv_gather, 0.1},
  };
  return kKernels;
}

std::uint64_t base_iters(apps::Scale scale) {
  switch (scale) {
    case apps::Scale::kTest: return 100'000;
    case apps::Scale::kBench: return 1'000'000;
    case apps::Scale::kPaper: return 10'000'000;
  }
  return 100'000;
}

struct KernelResult {
  std::uint64_t iters = 0;
  std::uint64_t checksum = 0;
  double seconds = 0.0;

  double ns_per_op() const {
    return iters > 0 ? seconds * 1e9 / static_cast<double>(iters) : 0.0;
  }
  double mops_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(iters) / seconds / 1e6 : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  const auto& opt = parsed.options;
  const bool stream = bench::stream_mode(opt);

  // One spec point per kernel × size; the size rides the variant label so
  // the config key reads "manhattan/32".
  std::vector<driver::SpecPoint> points;
  for (const auto& k : kernels()) {
    driver::SpecPoint pt;
    pt.app = k.name;
    pt.detector = k.arg == 0 ? "" : std::to_string(k.arg);
    pt.threshold = k.arg;
    pt.scale = opt.scale;
    pt.index = points.size();
    points.push_back(std::move(pt));
  }

  // Wall-clock is a live-only measurement: it varies run to run, so it
  // has no place in records or the record-driven stdout table.
  TableWriter wall({"kernel", "size", "iters", "ns/op", "Mops/s"});
  const int rc = bench::sharded_sweep<KernelResult, KernelResult>(
      points, opt, "micro_detector",
      [&](const driver::SpecPoint& pt) {
        const auto& k = kernels()[pt.index];
        KernelResult r;
        r.iters = static_cast<std::uint64_t>(
            static_cast<double>(base_iters(opt.scale)) * k.iters_scale);
        const auto t0 = std::chrono::steady_clock::now();
        r.checksum = k.body(k.arg, r.iters);
        r.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        return r;
      },
      [](const driver::SpecPoint&, KernelResult&& r) { return r; },
      [](const driver::SpecPoint&) { return std::uint64_t{0}; },  // no RNG
      [&](const driver::SpecPoint&, const KernelResult& r) {
        // Deterministic payload only: ns/op changes run to run and would
        // break merged-vs-serial byte comparison.
        return shard::JsonObject()
            .add("base_iters", base_iters(opt.scale))
            .add("iters", r.iters)
            .add("checksum", r.checksum)
            .str();
      },
      [&](const driver::SpecPoint& pt, const KernelResult& r) {
        const auto& k = kernels()[pt.index];
        wall.add_row({k.name, k.arg == 0 ? "-" : std::to_string(k.arg),
                      std::to_string(r.iters),
                      TableWriter::fmt(r.ns_per_op(), 2),
                      TableWriter::fmt(r.mops_per_sec(), 2)});
      });

  if (!stream)
    std::fprintf(stderr, "wall-clock (live-only, varies run to run):\n%s\n",
                 wall.to_text().c_str());
  return rc;
}
