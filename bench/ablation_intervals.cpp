// ablation_intervals.cpp — sensitivity of detection quality to the
// sampling-interval length. The paper fixes 3M instructions (footnote 3:
// chosen for the reduced input sets, vs "real-world" 100M); this harness
// sweeps the interval around that choice and reports how both detectors'
// operating points move.
//
// The app × nodes × factor product runs on the experiment driver
// (--threads=N) with the factor carried on the SweepSpec's numeric axis;
// each point builds its own Machine with the rescaled interval.
#include <cstdio>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  auto& opt = parsed.options;
  if (opt.app_names.empty()) opt.app_names = {"LU"};
  if (opt.node_counts.empty()) opt.node_counts = {8};

  std::printf("== Ablation: sampling-interval length (scale: %s) ==\n\n",
              apps::scale_name(opt.scale));
  analysis::CurveParams cp;

  driver::SweepSpec spec;
  spec.apps = opt.app_names;
  spec.node_counts = opt.node_counts;
  spec.thresholds = {0.5, 1.0, 2.0, 4.0};  // interval-length factors
  spec.scale = opt.scale;
  const auto points = spec.expand();

  struct PointResult {
    InstrCount interval = 0;
    sim::RunSummary run;
  };
  const driver::ExperimentRunner runner(opt.threads);
  const auto results = runner.map<PointResult>(
      points, [&](const driver::SpecPoint& pt) {
        const auto& app = apps::app_by_name(pt.app);
        const InstrCount base = apps::scaled_interval(app.name, pt.scale);
        MachineConfig cfg = default_config(pt.nodes);
        cfg.phase.interval_instructions = static_cast<InstrCount>(
            static_cast<double>(base) * pt.threshold);
        // Seed from the point WITHOUT the ablated axis: every interval-
        // length row of an (app, nodes) pair shares one RNG stream so the
        // rows differ only by the sampling interval under study.
        driver::SpecPoint seed_pt = pt;
        seed_pt.threshold = 0.0;
        cfg.seed = driver::spec_seed(seed_pt);
        sim::Machine machine(cfg);
        PointResult r;
        r.interval = cfg.phase.interval_instructions;
        r.run = machine.run(app.factory(pt.scale));
        return r;
      });

  // One table per (app, nodes): consecutive chunks of the factor axis.
  const std::size_t factors = spec.thresholds.size();
  for (std::size_t base = 0; base < results.size(); base += factors) {
    TableWriter t({"interval (1P basis)", "intervals/proc", "BBV CoV@10",
                   "DDV CoV@10", "BBV CoV@25", "DDV CoV@25"});
    for (std::size_t k = 0; k < factors; ++k) {
      const auto& res = results[base + k];
      const auto bbv = analysis::bbv_cov_curve(res.run.procs, cp);
      const auto ddv = analysis::bbv_ddv_cov_curve(res.run.procs, cp);
      t.add_row({TableWriter::fmt(static_cast<double>(res.interval), 4),
                 std::to_string(res.run.procs[0].intervals.size()),
                 TableWriter::fmt(analysis::cov_at_phases(bbv, 10), 3),
                 TableWriter::fmt(analysis::cov_at_phases(ddv, 10), 3),
                 TableWriter::fmt(analysis::cov_at_phases(bbv, 25), 3),
                 TableWriter::fmt(analysis::cov_at_phases(ddv, 25), 3)});
    }
    const auto& pt = points[base];
    std::printf("-- %s, %uP --\n%s\n", pt.app.c_str(), pt.nodes,
                t.to_text().c_str());
  }
  return 0;
}
