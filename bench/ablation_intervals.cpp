// ablation_intervals.cpp — sensitivity of detection quality to the
// sampling-interval length. The paper fixes 3M instructions (footnote 3:
// chosen for the reduced input sets, vs "real-world" 100M); this harness
// sweeps the interval around that choice and reports how both detectors'
// operating points move.
//
// The app × nodes × factor product runs on the experiment driver
// (--threads=N, --shard=i/N, --shards=N) with the factor carried on the
// SweepSpec's numeric axis; each point builds its own Machine with the
// rescaled interval and is reduced to one row carried in the stream
// record. The intervals renderer in src/report groups rows into one
// table per (app, nodes) — live or offline.
#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "sim/machine.hpp"

namespace {

using namespace dsm;

struct IntervalRow {
  InstrCount interval = 0;
  std::uint64_t intervals_per_proc = 0;
  double bbv10 = 0.0;
  double ddv10 = 0.0;
  double bbv25 = 0.0;
  double ddv25 = 0.0;
};

// Seed from the point WITHOUT the ablated axis: every interval-length row
// of an (app, nodes) pair shares one RNG stream so the rows differ only
// by the sampling interval under study.
std::uint64_t interval_seed(const driver::SpecPoint& pt) {
  driver::SpecPoint seed_pt = pt;
  seed_pt.threshold = 0.0;
  return driver::spec_seed(seed_pt);
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.app_names.empty()) opt.app_names = {"LU"};
  if (opt.node_counts.empty()) opt.node_counts = {8};

  analysis::CurveParams cp;

  driver::SweepSpec spec;
  spec.apps = opt.app_names;
  spec.node_counts = opt.node_counts;
  spec.thresholds = {0.5, 1.0, 2.0, 4.0};  // interval-length factors
  spec.batches = opt.batches;
  spec.scale = opt.scale;

  return bench::sharded_sweep<sim::RunSummary, IntervalRow>(
      spec.expand(), opt, "ablation_intervals",
      [&opt](const driver::SpecPoint& pt) {
        const auto& app = apps::app_by_name(pt.app);
        const InstrCount base = apps::scaled_interval(app.name, pt.scale);
        MachineConfig cfg = default_config(pt.nodes);
        cfg.phase.interval_instructions = static_cast<InstrCount>(
            static_cast<double>(base) * pt.threshold);
        cfg.batch_size = pt.batch != 0 ? pt.batch : opt.batch_size;
        cfg.seed = interval_seed(pt);
        sim::Machine machine(cfg);
        return machine.run(app.factory(pt.scale));
      },
      [&cp](const driver::SpecPoint& pt, sim::RunSummary&& run) {
        const auto bbv = analysis::bbv_cov_curve(run.procs, cp);
        const auto ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
        IntervalRow row;
        row.interval = run.cfg.phase.interval_instructions;
        row.intervals_per_proc = run.procs[0].intervals.size();
        row.bbv10 = analysis::cov_at_phases(bbv, 10);
        row.ddv10 = analysis::cov_at_phases(ddv, 10);
        row.bbv25 = analysis::cov_at_phases(bbv, 25);
        row.ddv25 = analysis::cov_at_phases(ddv, 25);
        (void)pt;
        return row;
      },
      interval_seed,
      [](const driver::SpecPoint&, const IntervalRow& row) {
        return shard::JsonObject()
            .add("interval", static_cast<std::uint64_t>(row.interval))
            .add("intervals_per_proc", row.intervals_per_proc)
            .add("bbv_cov10", row.bbv10)
            .add("ddv_cov10", row.ddv10)
            .add("bbv_cov25", row.bbv25)
            .add("ddv_cov25", row.ddv25)
            .str();
      });
}
