// ablation_intervals.cpp — sensitivity of detection quality to the
// sampling-interval length. The paper fixes 3M instructions (footnote 3:
// chosen for the reduced input sets, vs "real-world" 100M); this harness
// sweeps the interval around that choice and reports how both detectors'
// operating points move.
#include <cstdio>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto opt = bench::parse_options(argc, argv);
  if (opt.app_names.empty()) opt.app_names = {"LU"};
  if (opt.node_counts.empty()) opt.node_counts = {8};

  std::printf("== Ablation: sampling-interval length (scale: %s) ==\n\n",
              apps::scale_name(opt.scale));
  analysis::CurveParams cp;

  for (const auto& name : opt.app_names) {
    const auto& app = apps::app_by_name(name);
    for (const unsigned nodes : opt.node_counts) {
      TableWriter t({"interval (1P basis)", "intervals/proc", "BBV CoV@10",
                     "DDV CoV@10", "BBV CoV@25", "DDV CoV@25"});
      const InstrCount base = apps::scaled_interval(app.name, opt.scale);
      for (const double factor : {0.5, 1.0, 2.0, 4.0}) {
        MachineConfig cfg = default_config(nodes);
        cfg.phase.interval_instructions =
            static_cast<InstrCount>(static_cast<double>(base) * factor);
        sim::Machine machine(cfg);
        const auto run = machine.run(app.factory(opt.scale));
        const auto bbv = analysis::bbv_cov_curve(run.procs, cp);
        const auto ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
        t.add_row(
            {TableWriter::fmt(
                 static_cast<double>(cfg.phase.interval_instructions), 4),
             std::to_string(run.procs[0].intervals.size()),
             TableWriter::fmt(analysis::cov_at_phases(bbv, 10), 3),
             TableWriter::fmt(analysis::cov_at_phases(ddv, 10), 3),
             TableWriter::fmt(analysis::cov_at_phases(bbv, 25), 3),
             TableWriter::fmt(analysis::cov_at_phases(ddv, 25), 3)});
      }
      std::printf("-- %s, %uP --\n%s\n", app.name.c_str(), nodes,
                  t.to_text().c_str());
    }
  }
  return 0;
}
