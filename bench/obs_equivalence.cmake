# obs_equivalence.cmake — ctest script enforcing the observability
# layer's two determinism contracts end to end for one harness:
#
#   1. METRIC DETERMINISM: with --obs-stats the NDJSON stream (records now
#      carrying the machine's `obs` snapshot) must be byte-identical
#      across execution modes — single shard worker, in-process
#      --shards=2 --threads=2 orchestration, and --batch=4 — across the
#      full protocol axis. The snapshot is derived from simulated events
#      only, so how the host schedules the work must not show.
#   2. NON-PERTURBATION: switching stats, interval capture AND tracing on
#      must leave the live human stdout byte-identical to a plain run —
#      observability watches the simulation, it never feeds back into it.
#   3. INTERVAL DETERMINISM: the phase-attributed interval timeline
#      (--obs-intervals, the `obs_intervals` field) rides the same
#      guarantee as the snapshot — byte-identical across the same three
#      execution modes — and `dsm_report timeline` must render it with
#      exit 0, which includes the interval-sum reconciliation against the
#      end-of-run snapshot.
#
# Plus the offline consumers: `dsm_report validate --merged` and
# `dsm_report stats` must accept the obs-carrying stream, and the dumped
# binary trace must pass `dsm_report trace --validate` and convert to
# non-empty Chrome trace-event JSON.
#
# Variables: HARNESS (binary path), HARNESS_ARGS (;-list incl. the
#            protocol axis), TRACE_ARGS (;-list, a single-spec-point
#            config so the trace lands in ONE file), DSM_REPORT
#            (dsm_report binary path), TAG, WORK_DIR.

set(ref "${WORK_DIR}/${TAG}_ref.ndjson")
set(threaded "${WORK_DIR}/${TAG}_threads.ndjson")
set(batched "${WORK_DIR}/${TAG}_batch4.ndjson")

# 1a. Reference stream: one shard worker with stats on.
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --obs-stats --shard=0/1
  OUTPUT_FILE ${ref}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${HARNESS} --obs-stats --shard=0/1 exited with ${rc}")
endif()
file(READ ${ref} ref_bytes)
if(ref_bytes STREQUAL "")
  message(FATAL_ERROR "reference stream ${ref} is empty")
endif()
string(FIND "${ref_bytes}" "\"obs\":" obs_pos)
if(obs_pos EQUAL -1)
  message(FATAL_ERROR
    "reference stream carries no 'obs' snapshot despite --obs-stats")
endif()

# 1b. Same points through the in-process orchestrator with worker threads.
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --obs-stats --shards=2 --threads=2
  OUTPUT_FILE ${threaded}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--obs-stats --shards=2 --threads=2 exited with ${rc}")
endif()
file(READ ${threaded} threaded_bytes)
if(NOT ref_bytes STREQUAL threaded_bytes)
  message(FATAL_ERROR
    "obs snapshots differ between --shard=0/1 and --shards=2 --threads=2:\n"
    "  reference: ${ref}\n  threaded:  ${threaded}")
endif()

# 1c. Same points with the batched access path.
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --obs-stats --shard=0/1 --batch=4
  OUTPUT_FILE ${batched}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--obs-stats --shard=0/1 --batch=4 exited with ${rc}")
endif()
file(READ ${batched} batched_bytes)
if(NOT ref_bytes STREQUAL batched_bytes)
  message(FATAL_ERROR
    "obs snapshots differ between --batch=1 and --batch=4:\n"
    "  reference: ${ref}\n  batched:   ${batched}")
endif()

# Offline consumers of the obs-carrying stream.
execute_process(
  COMMAND ${DSM_REPORT} validate --merged ${ref}
  OUTPUT_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsm_report validate --merged rejected ${ref} (${rc})")
endif()
execute_process(
  COMMAND ${DSM_REPORT} stats ${ref}
  OUTPUT_VARIABLE stats_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsm_report stats exited with ${rc}")
endif()
if(stats_out STREQUAL "")
  message(FATAL_ERROR "dsm_report stats printed nothing for ${ref}")
endif()

# 3. The interval timeline must be byte-identical across the same modes.
set(iv_ref "${WORK_DIR}/${TAG}_iv_ref.ndjson")
set(iv_threaded "${WORK_DIR}/${TAG}_iv_threads.ndjson")
set(iv_batched "${WORK_DIR}/${TAG}_iv_batch4.ndjson")
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --obs-intervals --shard=0/1
  OUTPUT_FILE ${iv_ref}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--obs-intervals --shard=0/1 exited with ${rc}")
endif()
file(READ ${iv_ref} iv_ref_bytes)
string(FIND "${iv_ref_bytes}" "\"obs_intervals\":" iv_pos)
if(iv_pos EQUAL -1)
  message(FATAL_ERROR
    "stream carries no 'obs_intervals' timeline despite --obs-intervals")
endif()
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --obs-intervals --shards=2 --threads=2
  OUTPUT_FILE ${iv_threaded}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--obs-intervals --shards=2 --threads=2 exited with ${rc}")
endif()
file(READ ${iv_threaded} iv_threaded_bytes)
if(NOT iv_ref_bytes STREQUAL iv_threaded_bytes)
  message(FATAL_ERROR
    "interval timelines differ between --shard=0/1 and --shards=2 "
    "--threads=2:\n  reference: ${iv_ref}\n  threaded:  ${iv_threaded}")
endif()
execute_process(
  COMMAND ${HARNESS} ${HARNESS_ARGS} --obs-intervals --shard=0/1 --batch=4
  OUTPUT_FILE ${iv_batched}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--obs-intervals --shard=0/1 --batch=4 exited with ${rc}")
endif()
file(READ ${iv_batched} iv_batched_bytes)
if(NOT iv_ref_bytes STREQUAL iv_batched_bytes)
  message(FATAL_ERROR
    "interval timelines differ between --batch=1 and --batch=4:\n"
    "  reference: ${iv_ref}\n  batched:   ${iv_batched}")
endif()

# The timeline renderer must accept the stream — exit 0 implies every
# record's interval sums + tail reconciled against its snapshot.
execute_process(
  COMMAND ${DSM_REPORT} timeline ${iv_ref}
  OUTPUT_VARIABLE timeline_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "dsm_report timeline exited with ${rc} on ${iv_ref} (render or "
    "reconciliation failure)")
endif()
string(FIND "${timeline_out}" "reconciled:" rec_pos)
if(rec_pos EQUAL -1)
  message(FATAL_ERROR "dsm_report timeline never reconciled ${iv_ref}")
endif()

# 2. Live human stdout must not move when stats+intervals+tracing switch on.
set(plain_out "${WORK_DIR}/${TAG}_live_plain.txt")
set(obs_out "${WORK_DIR}/${TAG}_live_obs.txt")
set(trace_bin "${WORK_DIR}/${TAG}.trace")
execute_process(
  COMMAND ${HARNESS} ${TRACE_ARGS}
  OUTPUT_FILE ${plain_out}
  RESULT_VARIABLE rc_plain)
execute_process(
  COMMAND ${HARNESS} ${TRACE_ARGS} --obs-intervals --trace=${trace_bin}
  OUTPUT_FILE ${obs_out}
  RESULT_VARIABLE rc_obs)
if(NOT rc_plain EQUAL 0 OR NOT rc_obs EQUAL 0)
  message(FATAL_ERROR
    "live runs exited with ${rc_plain} (plain) / ${rc_obs} (observed)")
endif()
file(READ ${plain_out} plain_bytes)
file(READ ${obs_out} obs_bytes)
if(plain_bytes STREQUAL "")
  message(FATAL_ERROR "plain live output ${plain_out} is empty")
endif()
if(NOT plain_bytes STREQUAL obs_bytes)
  message(FATAL_ERROR
    "--obs-intervals --trace changed the live stdout (observability must "
    "not perturb the simulation):\n  plain: ${plain_out}\n"
    "  observed: ${obs_out}")
endif()
if(NOT EXISTS ${trace_bin})
  message(FATAL_ERROR "trace run left no dump at ${trace_bin}")
endif()

# The dumped trace must validate and convert to Chrome trace-event JSON.
execute_process(
  COMMAND ${DSM_REPORT} trace --validate ${trace_bin}
  OUTPUT_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsm_report trace --validate rejected ${trace_bin}")
endif()
set(chrome_json "${WORK_DIR}/${TAG}_chrome.json")
execute_process(
  COMMAND ${DSM_REPORT} trace ${trace_bin}
  OUTPUT_FILE ${chrome_json}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsm_report trace conversion exited with ${rc}")
endif()
file(READ ${chrome_json} chrome_bytes)
string(FIND "${chrome_bytes}" "\"traceEvents\"" te_pos)
if(te_pos EQUAL -1)
  message(FATAL_ERROR "${chrome_json} is not Chrome trace-event JSON")
endif()

message(STATUS "obs equivalence OK (${TAG}): snapshots and interval "
               "timelines byte-identical across shard/threads/batch, "
               "timeline reconciled, live stdout unperturbed, trace "
               "validated and converted")
