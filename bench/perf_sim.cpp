// perf_sim.cpp — driver-native throughput harness for the FULL simulation
// loop: sim::Machine::run (cpu timing + scheduler + sync + BBV/DDV phase
// hardware + coherence fabric + network), timed end-to-end per
// `app × nodes` configuration, where perf_hotpath isolates the
// fabric+network slice. Together the two JSON trajectories say both how
// fast the memory system is AND how fast the experiments the figures are
// made of actually run — so perf PRs can see which layer they moved.
//
// Output split (same contract as perf_hotpath): stdout carries the
// record-driven deterministic table (simulated instructions / cycles /
// intervals / network traffic — bit-identical across optimization PRs by
// construction); wall-clock numbers are a live-only measurement and go
// to stderr plus BENCH_sim.json (override with --json=PATH), with the
// measuring host's cpu/cores/governor recorded alongside so trajectory
// points from different machines stay interpretable.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "driver/sweep_spec.hpp"
#include "obs/prof.hpp"

namespace {

using namespace dsm;

struct SimResult {
  // Deterministic simulation checksums — identical before/after any
  // mechanical optimization of the simulator.
  std::uint64_t instructions = 0;  ///< committed non-sync instrs, all procs
  std::uint64_t cycles = 0;        ///< sum of per-proc finish times
  std::uint64_t intervals = 0;     ///< recorded intervals, all procs
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
  // Live-only measurement.
  double seconds = 0.0;
  /// Deterministic metrics snapshot ("" unless --obs-stats).
  std::string obs_json;

  double sim_mips() const {
    return seconds > 0.0 ? static_cast<double>(instructions) / seconds / 1e6
                         : 0.0;
  }
};

SimResult time_config(const apps::AppInfo& app, apps::Scale scale,
                      unsigned nodes, std::uint64_t seed,
                      unsigned batch_size, const ObsConfig& obs) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::RunSummary run =
      bench::run_workload(app, scale, nodes, /*verbose=*/false, seed,
                          Protocol::kMesi, batch_size, obs);
  const auto t1 = std::chrono::steady_clock::now();

  SimResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.obs_json = std::move(run.obs_json);
  for (unsigned p = 0; p < nodes; ++p) {
    r.instructions += run.instructions[p];
    r.cycles += run.final_cycles[p];
    r.intervals += run.procs[p].intervals.size();
  }
  for (unsigned c = 0; c < net::kNumTrafficClasses; ++c) {
    r.net_messages += run.net_messages[c];
    r.net_bytes += run.net_bytes[c];
  }
  return r;
}

void write_json(const std::string& path, apps::Scale scale,
                const std::vector<driver::SpecPoint>& points,
                const std::vector<SimResult>& results) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  f << "{\n";
  f << "  \"bench\": \"perf_sim\",\n";
  f << "  \"scale\": \"" << apps::scale_name(scale) << "\",\n";
  f << "  \"host\": " << bench::host_context_json() << ",\n";
  // Present only in -DDSM_OBS_PROF=ON builds: the self-profiler's stage
  // breakdown for this process (all configs pooled).
  if (obs::prof_enabled())
    f << "  \"prof\": " << obs::prof_report_json() << ",\n";
  f << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    // Swept batch values label their rows; unswept runs keep the
    // pre-batching row shape byte-for-byte.
    char batch_field[32] = "";
    if (points[i].batch != 0)
      std::snprintf(batch_field, sizeof(batch_field), "\"batch\": %u, ",
                    points[i].batch);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"app\": \"%s\", \"nodes\": %u, %s"
                  "\"sim_mips\": %.3f, \"seconds\": %.3f, "
                  "\"instructions\": %llu, \"cycles\": %llu, "
                  "\"net_messages\": %llu, \"net_bytes\": %llu}%s\n",
                  points[i].app.c_str(), points[i].nodes, batch_field,
                  r.sim_mips(), r.seconds,
                  static_cast<unsigned long long>(r.instructions),
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.net_messages),
                  static_cast<unsigned long long>(r.net_bytes),
                  i + 1 < results.size() ? "," : "");
    f << buf;
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  // --json=PATH is ours; everything else goes through the shared parser.
  std::string json_path = "BENCH_sim.json";
  bool json_set = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      json_set = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  auto res = bench::parse_options(static_cast<int>(args.size()), args.data());
  if (!res.ok) return bench::usage_error(res);
  if (json_set && (res.options.shard_set || res.options.shards > 0)) {
    std::fprintf(stderr, "error: --json is not available in sharded runs "
                         "(the NDJSON stream carries the deterministic "
                         "counters)\n");
    return 2;
  }
  if (const auto rc = bench::maybe_orchestrate(
          static_cast<int>(args.size()), args.data(), res))
    return *rc;
  const bench::BenchOptions& opt = res.options;
  const bool stream = bench::stream_mode(opt);

  const auto apps_selected = bench::selected_apps(opt);
  const std::vector<unsigned> nodes =
      opt.node_counts.empty() ? std::vector<unsigned>{2, 8, 32}
                              : opt.node_counts;

  driver::SweepSpec spec;
  for (const auto* app : apps_selected) spec.apps.push_back(app->name);
  spec.node_counts = nodes;
  spec.batches = opt.batches;
  spec.scale = opt.scale;
  const auto points = spec.expand();

  // Wall-clock is a live-only measurement (stderr + JSON trajectory);
  // the record-driven stdout table carries the deterministic counters.
  std::vector<driver::SpecPoint> done_points;
  std::vector<SimResult> results;
  const int rc = bench::sharded_sweep<SimResult, SimResult>(
      points, opt, "perf_sim",
      [&](const driver::SpecPoint& pt) {
        return time_config(apps::app_by_name(pt.app), pt.scale, pt.nodes,
                           driver::spec_seed(pt),
                           pt.batch != 0 ? pt.batch : opt.batch_size,
                           bench::obs_config_for_point(opt, pt,
                                                       points.size() > 1));
      },
      [](const driver::SpecPoint&, SimResult&& r) { return r; },
      [](const driver::SpecPoint& pt) { return driver::spec_seed(pt); },
      [](const driver::SpecPoint&, const SimResult& r) {
        // Deterministic checksums only: wall-clock would break the
        // merged-vs-serial byte comparison.
        return shard::JsonObject()
            .add("instructions", r.instructions)
            .add("cycles", r.cycles)
            .add("intervals", r.intervals)
            .add("net_messages", r.net_messages)
            .add("net_bytes", r.net_bytes)
            .str();
      },
      [&](const driver::SpecPoint& pt, const SimResult& r) {
        done_points.push_back(pt);
        results.push_back(r);
      },
      [](const driver::SpecPoint&, const SimResult& r) {
        return r.obs_json;
      });
  if (stream) return rc;

  if (obs::prof_enabled())
    std::fprintf(stderr, "self-profiler (tsc, inclusive):\n%s\n",
                 obs::prof_report_text().c_str());

  TableWriter wall({"app", "nodes", "sim MIPS", "seconds"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    wall.add_row({done_points[i].app, std::to_string(done_points[i].nodes),
                  TableWriter::fmt(results[i].sim_mips(), 3),
                  TableWriter::fmt(results[i].seconds, 3)});
  }
  std::fprintf(stderr, "wall-clock (live-only, varies run to run):\n%s\n",
               wall.to_text().c_str());
  write_json(json_path, opt.scale, done_points, results);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return rc;
}
