// table1_architecture.cpp — reproduces Table I of the paper ("Summary of
// simulated architecture") directly from the live configuration structs,
// and validates the derived quantities every timing model consumes.
// No simulation runs here; the shared flags are accepted for sweep-driver
// uniformity. In stream mode the harness emits its derived quantities as
// a single spec point (a one-line NDJSON stream), so sharding a batch
// that includes table1 still merges cleanly.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/config.hpp"
#include "network/network.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  const auto& opt = parsed.options;

  const MachineConfig cfg = default_config(32);
  const std::string err = cfg.validate();

  if (bench::stream_mode(opt)) {
    // One default spec point; derived quantities are pure functions of
    // the configuration, so the record is deterministic.
    driver::SweepSpec spec;
    spec.scale = opt.scale;
    bench::sharded_sweep<int, int>(
        spec.expand(), opt, "table1_architecture",
        [](const driver::SpecPoint&) { return 0; },
        [](const driver::SpecPoint&, int&&) { return 0; },
        [](const driver::SpecPoint&) { return std::uint64_t{0}; },
        [&](const driver::SpecPoint&, const int&) {
          return shard::JsonObject()
              .add("cycles_per_ns", cfg.cycles_per_ns())
              .add("dram_latency_cycles",
                   static_cast<std::uint64_t>(
                       cfg.ns_to_cycles(cfg.memory.access_ns)))
              .add("pin_to_pin_cycles",
                   static_cast<std::uint64_t>(
                       cfg.ns_to_cycles(cfg.network.pin_to_pin_ns)))
              .add("config_valid", std::uint64_t{err.empty()})
              .str();
        },
        [](const driver::SpecPoint&, int&&) {});
    return err.empty() ? 0 : 1;
  }

  std::printf("== Table I: summary of simulated architecture ==\n\n%s\n",
              format_table1(cfg).c_str());

  std::printf("derived quantities (consumed by the timing models):\n");
  std::printf("  core cycles per ns        : %.1f\n", cfg.cycles_per_ns());
  std::printf("  DRAM access latency       : %llu cycles (75 ns)\n",
              static_cast<unsigned long long>(
                  cfg.ns_to_cycles(cfg.memory.access_ns)));
  std::printf("  line transfer @2.6 GB/s   : %.1f cycles (32 B)\n",
              32.0 / cfg.memory.bandwidth_gbps * cfg.cycles_per_ns());
  std::printf("  network pin-to-pin        : %llu cycles (16 ns)\n",
              static_cast<unsigned long long>(
                  cfg.ns_to_cycles(cfg.network.pin_to_pin_ns)));
  std::printf("  core cycles / router cycle: %.1f (2 GHz / 400 MHz)\n",
              static_cast<double>(cfg.core.frequency_hz) /
                  cfg.network.router_frequency_hz);

  std::printf("\nhypercube geometry (Table I network row):\n");
  std::printf("  nodes  diameter  mean-hops  zero-load line fetch (cycles)\n");
  for (const unsigned n : {2u, 8u, 32u}) {
    MachineConfig c = default_config(n);
    net::Network net(c);
    const auto& topo = net.topology();
    std::printf("  %-5u  %-8u  %-9.2f  %llu\n", n, topo.diameter(),
                topo.mean_hops(),
                static_cast<unsigned long long>(net.zero_load_latency(
                    0, n - 1, c.l2.line_bytes)));
  }

  std::printf("\nconfig validation: %s\n", err.empty() ? "OK" : err.c_str());
  return err.empty() ? 0 : 1;
}
