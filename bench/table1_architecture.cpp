// table1_architecture.cpp — reproduces Table I of the paper ("Summary of
// simulated architecture") directly from the live configuration structs,
// and validates the derived quantities every timing model consumes.
// No simulation runs here; the shared flags are accepted for sweep-driver
// uniformity but only parsing errors change behavior.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/config.hpp"
#include "network/network.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);

  const MachineConfig cfg = default_config(32);
  std::printf("== Table I: summary of simulated architecture ==\n\n%s\n",
              format_table1(cfg).c_str());

  std::printf("derived quantities (consumed by the timing models):\n");
  std::printf("  core cycles per ns        : %.1f\n", cfg.cycles_per_ns());
  std::printf("  DRAM access latency       : %llu cycles (75 ns)\n",
              static_cast<unsigned long long>(
                  cfg.ns_to_cycles(cfg.memory.access_ns)));
  std::printf("  line transfer @2.6 GB/s   : %.1f cycles (32 B)\n",
              32.0 / cfg.memory.bandwidth_gbps * cfg.cycles_per_ns());
  std::printf("  network pin-to-pin        : %llu cycles (16 ns)\n",
              static_cast<unsigned long long>(
                  cfg.ns_to_cycles(cfg.network.pin_to_pin_ns)));
  std::printf("  core cycles / router cycle: %.1f (2 GHz / 400 MHz)\n",
              static_cast<double>(cfg.core.frequency_hz) /
                  cfg.network.router_frequency_hz);

  std::printf("\nhypercube geometry (Table I network row):\n");
  std::printf("  nodes  diameter  mean-hops  zero-load line fetch (cycles)\n");
  for (const unsigned n : {2u, 8u, 32u}) {
    MachineConfig c = default_config(n);
    net::Network net(c);
    const auto& topo = net.topology();
    std::printf("  %-5u  %-8u  %-9.2f  %llu\n", n, topo.diameter(),
                topo.mean_hops(),
                static_cast<unsigned long long>(net.zero_load_latency(
                    0, n - 1, c.l2.line_bytes)));
  }

  const std::string err = cfg.validate();
  std::printf("\nconfig validation: %s\n", err.empty() ? "OK" : err.c_str());
  return err.empty() ? 0 : 1;
}
