// table1_architecture.cpp — reproduces Table I of the paper ("Summary of
// simulated architecture") directly from the live configuration structs,
// and validates the derived quantities every timing model consumes.
// No simulation runs here; the one default spec point carries the derived
// quantities as a record (so sharding a batch that includes table1 still
// merges cleanly), and the table1 renderer in src/report prints the full
// human block — live or offline — from the configuration itself, which is
// a pure function.
#include "bench/bench_util.hpp"
#include "common/config.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  const auto& opt = parsed.options;

  const MachineConfig cfg = default_config(32);
  const std::string err = cfg.validate();

  // One default spec point; derived quantities are pure functions of the
  // configuration, so the record is deterministic.
  driver::SweepSpec spec;
  spec.scale = opt.scale;
  const int rc = bench::sharded_sweep<int, int>(
      spec.expand(), opt, "table1_architecture",
      [](const driver::SpecPoint&) { return 0; },
      [](const driver::SpecPoint&, int&&) { return 0; },
      [](const driver::SpecPoint&) { return std::uint64_t{0}; },
      [&](const driver::SpecPoint&, const int&) {
        return shard::JsonObject()
            .add("cycles_per_ns", cfg.cycles_per_ns())
            .add("dram_latency_cycles",
                 static_cast<std::uint64_t>(
                     cfg.ns_to_cycles(cfg.memory.access_ns)))
            .add("pin_to_pin_cycles",
                 static_cast<std::uint64_t>(
                     cfg.ns_to_cycles(cfg.network.pin_to_pin_ns)))
            .add("config_valid", std::uint64_t{err.empty()})
            .str();
      });
  if (rc != 0) return rc;
  return err.empty() ? 0 : 1;
}
