// table2_applications.cpp — reproduces Table II of the paper
// ("Applications used in the experiments") and augments it with measured
// workload characteristics from a quick 8-processor run of each program,
// so the reader can verify the models behave like the programs they stand
// in for (instruction volume, memory intensity, remote-access growth).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto opt = bench::parse_options(argc, argv);
  // Default to the reduced scale here: this bench is a characterization
  // table, not a figure reproduction, and kTest keeps it under a minute.
  if (argc <= 1) opt.scale = apps::Scale::kTest;

  std::printf("== Table II: applications and input sets ==\n\n");
  TableWriter t2({"Application", "Input Set (paper)"});
  for (const auto& app : apps::paper_apps())
    t2.add_row({app.name, app.input_paper});
  std::printf("%s\n", t2.to_text().c_str());

  std::printf("measured characteristics (%s scale, 8 processors):\n\n",
              apps::scale_name(opt.scale));
  TableWriter m({"app", "instr/proc (M)", "intervals/proc", "CPI",
                 "mem instr %", "remote frac", "gshare mispred %"});
  for (const auto& app : apps::paper_apps()) {
    const auto run = bench::run_workload(app, opt.scale, 8, opt.verbose);
    const auto& c = run.coherence[0];
    const double mem_frac =
        static_cast<double>(c.loads + c.stores) /
        static_cast<double>(run.instructions[0]);
    m.add_row({app.name,
               TableWriter::fmt(static_cast<double>(run.instructions[0]) / 1e6, 3),
               std::to_string(run.procs[0].intervals.size()),
               TableWriter::fmt(run.cpi(0), 3),
               TableWriter::fmt(100.0 * mem_frac, 3),
               TableWriter::fmt(run.remote_access_fraction(0), 3),
               TableWriter::fmt(100.0 * run.mispredict_rate[0], 3)});
  }
  std::printf("%s\n", m.to_text().c_str());
  return 0;
}
