// table2_applications.cpp — reproduces Table II of the paper
// ("Applications used in the experiments") and augments it with measured
// workload characteristics from a quick 8-processor run of each program,
// so the reader can verify the models behave like the programs they stand
// in for (instruction volume, memory intensity, remote-access growth).
//
// The four characterization runs execute on the experiment driver
// (--threads=N, --shard=i/N, --shards=N); each RunSummary is reduced to
// its table row inside the worker and serialized into the stream record,
// which the table2 renderer in src/report assembles into the measured
// table in Table II order — live or offline.
#include "bench/bench_util.hpp"

namespace {

struct AppRow {
  double instr_m = 0.0;
  std::uint64_t intervals = 0;
  double cpi = 0.0;
  double mem_pct = 0.0;
  double remote_frac = 0.0;
  double mispredict_pct = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  // Default to the reduced scale here: this bench is a characterization
  // table, not a figure reproduction, and kTest keeps it under a minute.
  if (!parsed.scale_set) opt.scale = apps::Scale::kTest;

  // All four apps regardless of --apps: the table documents the full set.
  std::vector<const apps::AppInfo*> all;
  for (const auto& app : apps::paper_apps()) all.push_back(&app);
  return bench::run_reduced_sweep<AppRow>(
      all, {8}, opt, "table2_applications",
      [](const driver::SpecPoint&, sim::RunSummary&& run) {
        const auto& c = run.coherence[0];
        AppRow row;
        row.instr_m = static_cast<double>(run.instructions[0]) / 1e6;
        row.intervals = run.procs[0].intervals.size();
        row.cpi = run.cpi(0);
        row.mem_pct = 100.0 * static_cast<double>(c.loads + c.stores) /
                      static_cast<double>(run.instructions[0]);
        row.remote_frac = run.remote_access_fraction(0);
        row.mispredict_pct = 100.0 * run.mispredict_rate[0];
        return row;
      },
      [](const driver::SpecPoint&, const AppRow& row) {
        return shard::JsonObject()
            .add("instr_m", row.instr_m)
            .add("intervals", row.intervals)
            .add("cpi", row.cpi)
            .add("mem_instr_pct", row.mem_pct)
            .add("remote_frac", row.remote_frac)
            .add("mispredict_pct", row.mispredict_pct)
            .str();
      });
}
