// table2_applications.cpp — reproduces Table II of the paper
// ("Applications used in the experiments") and augments it with measured
// workload characteristics from a quick 8-processor run of each program,
// so the reader can verify the models behave like the programs they stand
// in for (instruction volume, memory intensity, remote-access growth).
//
// The four characterization runs execute on the experiment driver
// (--threads=N); the table is assembled serially in Table II order.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  auto& opt = parsed.options;
  // Default to the reduced scale here: this bench is a characterization
  // table, not a figure reproduction, and kTest keeps it under a minute.
  if (!parsed.scale_set) opt.scale = apps::Scale::kTest;

  std::printf("== Table II: applications and input sets ==\n\n");
  TableWriter t2({"Application", "Input Set (paper)"});
  for (const auto& app : apps::paper_apps())
    t2.add_row({app.name, app.input_paper});
  std::printf("%s\n", t2.to_text().c_str());

  std::printf("measured characteristics (%s scale, 8 processors):\n\n",
              apps::scale_name(opt.scale));
  TableWriter m({"app", "instr/proc (M)", "intervals/proc", "CPI",
                 "mem instr %", "remote frac", "gshare mispred %"});
  // All four apps regardless of --apps: the table documents the full set.
  std::vector<const apps::AppInfo*> all;
  for (const auto& app : apps::paper_apps()) all.push_back(&app);
  const auto results = bench::run_sweep(all, {8}, opt);
  for (const auto& res : results) {
    const auto& run = res.run;
    const auto& c = run.coherence[0];
    const double mem_frac =
        static_cast<double>(c.loads + c.stores) /
        static_cast<double>(run.instructions[0]);
    m.add_row({res.app->name,
               TableWriter::fmt(static_cast<double>(run.instructions[0]) / 1e6, 3),
               std::to_string(run.procs[0].intervals.size()),
               TableWriter::fmt(run.cpi(0), 3),
               TableWriter::fmt(100.0 * mem_frac, 3),
               TableWriter::fmt(run.remote_access_fraction(0), 3),
               TableWriter::fmt(100.0 * run.mispredict_rate[0], 3)});
  }
  std::printf("%s\n", m.to_text().c_str());
  return 0;
}
