// ablation_ddv_terms.cpp — what does each term of the DDS buy?
//
// The paper multiplies three factors into its scalar: access frequency F,
// pre-programmed distance D, and system-wide contention C (§III-B). This
// harness re-runs the Figure 4 classification on the SAME recorded
// execution with ablated DDS variants (full F*D*C, F*D, F*C, F alone) and
// reports the achievable CoV at fixed phase budgets.
//
// Simulations run on the experiment driver (--threads=N); the variant
// replays are pure analysis over the recorded traces and stay serial.
#include <cstdio>

#include "analysis/curve.hpp"
#include "analysis/ddv_ablation.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "network/topology.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {32};

  std::printf("== Ablation: DDS term contributions (scale: %s) ==\n\n",
              apps::scale_name(opt.scale));

  analysis::CurveParams cp;
  const analysis::DdsVariant variants[] = {
      analysis::DdsVariant::kFull,
      analysis::DdsVariant::kNoContention,
      analysis::DdsVariant::kNoDistance,
      analysis::DdsVariant::kFrequencyOnly,
  };

  const auto results = bench::run_sweep(
      bench::named_apps(opt, {"LU", "Equake"}), opt.node_counts, opt);
  for (const auto& res : results) {
    const auto& app = *res.app;
    const unsigned nodes = res.point.nodes;
    const net::TopologyModel topo(res.run.cfg.network.topology, nodes);

    TableWriter t({"DDS variant", "CoV@10 phases", "CoV@25 phases",
                   "phases for CoV<=20%"});
    // Baseline row: BBV only.
    const auto bbv = analysis::bbv_cov_curve(res.run.procs, cp);
    t.add_row({"(BBV baseline)",
               TableWriter::fmt(analysis::cov_at_phases(bbv, 10), 3),
               TableWriter::fmt(analysis::cov_at_phases(bbv, 25), 3),
               TableWriter::fmt(analysis::phases_for_cov(bbv, 0.20), 3)});
    for (const auto v : variants) {
      const auto procs = analysis::with_dds_variant(res.run.procs, topo, v);
      const auto curve = analysis::bbv_ddv_cov_curve(procs, cp);
      t.add_row({dds_variant_name(v),
                 TableWriter::fmt(analysis::cov_at_phases(curve, 10), 3),
                 TableWriter::fmt(analysis::cov_at_phases(curve, 25), 3),
                 TableWriter::fmt(analysis::phases_for_cov(curve, 0.20),
                                  3)});
      bench::maybe_write_csv(opt,
                             "ablation_dds_" + app.name + "_" +
                                 std::to_string(nodes) + "p_" +
                                 std::to_string(static_cast<int>(v)),
                             curve);
    }
    std::printf("-- %s, %uP --\n%s\n", app.name.c_str(), nodes,
                t.to_text().c_str());
  }
  return 0;
}
