// ablation_ddv_terms.cpp — what does each term of the DDS buy?
//
// The paper multiplies three factors into its scalar: access frequency F,
// pre-programmed distance D, and system-wide contention C (§III-B). This
// harness re-runs the Figure 4 classification on the SAME recorded
// execution with ablated DDS variants (full F*D*C, F*D, F*C, F alone) and
// reports the achievable CoV at fixed phase budgets.
//
// Simulations run on the experiment driver (--threads=N, --shard=i/N,
// --shards=N); the variant replays execute inside the worker right after
// the simulation, so the recorded traces are reduced to table rows (and
// optional CSV curves) before anything leaves the worker.
#include <cstdio>

#include "analysis/curve.hpp"
#include "analysis/ddv_ablation.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "network/topology.hpp"

namespace {

using namespace dsm;

constexpr analysis::DdsVariant kVariants[] = {
    analysis::DdsVariant::kFull,
    analysis::DdsVariant::kNoContention,
    analysis::DdsVariant::kNoDistance,
    analysis::DdsVariant::kFrequencyOnly,
};
constexpr std::size_t kNumVariants = std::size(kVariants);

struct CovRow {
  double cov10 = 0.0;
  double cov25 = 0.0;
  double phases20 = 0.0;
};

CovRow cov_row(const std::vector<analysis::CurvePoint>& curve) {
  return {analysis::cov_at_phases(curve, 10),
          analysis::cov_at_phases(curve, 25),
          analysis::phases_for_cov(curve, 0.20)};
}

struct DdsAblation {
  CovRow baseline;                 ///< BBV only
  CovRow variant[kNumVariants];
  /// Full-resolution variant curves, kept only when CSV output is on
  /// (the consume step writes the files).
  std::vector<std::vector<analysis::CurvePoint>> csv_curves;
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {32};
  const bool stream = bench::stream_mode(opt);

  if (!stream)
    std::printf("== Ablation: DDS term contributions (scale: %s) ==\n\n",
                apps::scale_name(opt.scale));

  analysis::CurveParams cp;
  const bool keep_csv = !opt.csv_dir.empty() && !stream;

  bench::run_reduced_sweep<DdsAblation>(
      bench::named_apps(opt, {"LU", "Equake"}), opt.node_counts, opt,
      "ablation_ddv_terms",
      [&](const driver::SpecPoint& pt, sim::RunSummary&& run) {
        const net::TopologyModel topo(run.cfg.network.topology, pt.nodes);
        DdsAblation out;
        out.baseline = cov_row(analysis::bbv_cov_curve(run.procs, cp));
        for (std::size_t i = 0; i < kNumVariants; ++i) {
          const auto procs =
              analysis::with_dds_variant(run.procs, topo, kVariants[i]);
          auto curve = analysis::bbv_ddv_cov_curve(procs, cp);
          out.variant[i] = cov_row(curve);
          if (keep_csv) out.csv_curves.push_back(std::move(curve));
        }
        return out;
      },
      [](const driver::SpecPoint&, const DdsAblation& r) {
        shard::JsonObject o;
        o.add("bbv_cov10", r.baseline.cov10)
            .add("bbv_cov25", r.baseline.cov25);
        for (std::size_t i = 0; i < kNumVariants; ++i) {
          const std::string tag = dds_variant_name(kVariants[i]);
          o.add(tag + "_cov10", r.variant[i].cov10)
              .add(tag + "_cov25", r.variant[i].cov25)
              .add(tag + "_phases20", r.variant[i].phases20);
        }
        return o.str();
      },
      [&](const driver::SpecPoint& pt, DdsAblation&& r) {
        TableWriter t({"DDS variant", "CoV@10 phases", "CoV@25 phases",
                       "phases for CoV<=20%"});
        // Baseline row: BBV only.
        t.add_row({"(BBV baseline)", TableWriter::fmt(r.baseline.cov10, 3),
                   TableWriter::fmt(r.baseline.cov25, 3),
                   TableWriter::fmt(r.baseline.phases20, 3)});
        for (std::size_t i = 0; i < kNumVariants; ++i) {
          t.add_row({dds_variant_name(kVariants[i]),
                     TableWriter::fmt(r.variant[i].cov10, 3),
                     TableWriter::fmt(r.variant[i].cov25, 3),
                     TableWriter::fmt(r.variant[i].phases20, 3)});
          if (keep_csv)
            bench::maybe_write_csv(
                opt,
                "ablation_dds_" + pt.app + "_" +
                    std::to_string(pt.nodes) + "p_" +
                    std::to_string(static_cast<int>(kVariants[i])),
                r.csv_curves[i]);
        }
        std::printf("-- %s, %uP --\n%s\n", pt.app.c_str(), pt.nodes,
                    t.to_text().c_str());
      });
  return 0;
}
