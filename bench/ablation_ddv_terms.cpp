// ablation_ddv_terms.cpp — what does each term of the DDS buy?
//
// The paper multiplies three factors into its scalar: access frequency F,
// pre-programmed distance D, and system-wide contention C (§III-B). This
// harness re-runs the Figure 4 classification on the SAME recorded
// execution with ablated DDS variants (full F*D*C, F*D, F*C, F alone) and
// reports the achievable CoV at fixed phase budgets.
//
// Simulations run on the experiment driver (--threads=N, --shard=i/N,
// --shards=N); the variant replays execute inside the worker right after
// the simulation, reducing the recorded traces to per-variant rows and
// full-resolution curves carried in the stream record. The ddv_terms
// renderer in src/report prints the table (and CSV exports) — live or
// offline.
#include "analysis/curve.hpp"
#include "analysis/ddv_ablation.hpp"
#include "bench/bench_util.hpp"
#include "network/topology.hpp"

namespace {

using namespace dsm;

constexpr analysis::DdsVariant kVariants[] = {
    analysis::DdsVariant::kFull,
    analysis::DdsVariant::kNoContention,
    analysis::DdsVariant::kNoDistance,
    analysis::DdsVariant::kFrequencyOnly,
};
constexpr std::size_t kNumVariants = std::size(kVariants);

struct CovRow {
  double cov10 = 0.0;
  double cov25 = 0.0;
  double phases20 = 0.0;
};

CovRow cov_row(const std::vector<analysis::CurvePoint>& curve) {
  return {analysis::cov_at_phases(curve, 10),
          analysis::cov_at_phases(curve, 25),
          analysis::phases_for_cov(curve, 0.20)};
}

std::string cov_row_json(const CovRow& r) {
  return shard::JsonObject()
      .add("cov10", r.cov10)
      .add("cov25", r.cov25)
      .add("phases20", r.phases20)
      .str();
}

struct DdsAblation {
  CovRow baseline;  ///< BBV only
  CovRow variant[kNumVariants];
  /// Full-resolution variant curves: always kept — they ride the stream
  /// record so the offline renderer can export the same CSV files a live
  /// `--csv=DIR` run writes.
  std::vector<std::vector<analysis::CurvePoint>> curves;
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.node_counts.empty()) opt.node_counts = {32};

  analysis::CurveParams cp;

  return bench::run_reduced_sweep<DdsAblation>(
      bench::named_apps(opt, {"LU", "Equake"}), opt.node_counts, opt,
      "ablation_ddv_terms",
      [&](const driver::SpecPoint& pt, sim::RunSummary&& run) {
        const net::TopologyModel topo(run.cfg.network.topology, pt.nodes);
        DdsAblation out;
        out.baseline = cov_row(analysis::bbv_cov_curve(run.procs, cp));
        for (std::size_t i = 0; i < kNumVariants; ++i) {
          const auto procs =
              analysis::with_dds_variant(run.procs, topo, kVariants[i]);
          auto curve = analysis::bbv_ddv_cov_curve(procs, cp);
          out.variant[i] = cov_row(curve);
          out.curves.push_back(std::move(curve));
        }
        return out;
      },
      [](const driver::SpecPoint&, const DdsAblation& r) {
        shard::JsonArray variants;
        for (std::size_t i = 0; i < kNumVariants; ++i) {
          variants.add_raw(
              shard::JsonObject()
                  .add("name", dds_variant_name(kVariants[i]))
                  .add("id", static_cast<std::uint64_t>(
                                 static_cast<int>(kVariants[i])))
                  .add("cov10", r.variant[i].cov10)
                  .add("cov25", r.variant[i].cov25)
                  .add("phases20", r.variant[i].phases20)
                  .add_raw("curve", bench::curve_json(r.curves[i]))
                  .str());
        }
        return shard::JsonObject()
            .add_raw("bbv", cov_row_json(r.baseline))
            .add_raw("variants", variants.str())
            .str();
      });
}
