// ablation_topology.cpp — the DDV's distance matrix D is "a matrix of
// pre-programmed constants" derived from the interconnect. This harness
// runs the same workload on a 16-node hypercube, 2-D mesh, 2-D torus, and
// ring (all supported by the network model), and reports how topology —
// and with it D's structure and the machine's latency spread — shifts
// both detectors' operating points.
//
// The app × topology product runs on the experiment driver (--threads=N,
// --shard=i/N, --shards=N) with the topology carried on the SweepSpec's
// variant axis; each run is reduced to one row carried in the stream
// record. The topology renderer in src/report groups rows into one table
// per app — live or offline.
#include <stdexcept>
#include <string>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "sim/machine.hpp"

namespace {

using namespace dsm;

constexpr unsigned kNodes = 16;
constexpr Topology kTopologies[] = {Topology::kHypercube, Topology::kTorus2D,
                                    Topology::kMesh2D, Topology::kRing};

// The variant axis carries the topology by name; map it back rather
// than inferring from the point's index.
Topology topology_of(const driver::SpecPoint& pt) {
  for (const Topology topo : kTopologies)
    if (pt.detector == topology_name(topo)) return topo;
  throw std::runtime_error("unknown topology variant: " + pt.detector);
}

// Seed from the point WITHOUT the ablated axis: all four topology rows of
// an app must share one RNG stream, or the comparison would mislabel
// seed-induced variation as a topology effect.
std::uint64_t topology_seed(const driver::SpecPoint& pt) {
  driver::SpecPoint seed_pt = pt;
  seed_pt.detector.clear();
  return driver::spec_seed(seed_pt);
}

struct TopologyRow {
  unsigned diameter = 0;
  double mean_cpi = 0.0;
  double bbv15 = 0.0;
  double ddv15 = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  if (const auto rc = bench::maybe_orchestrate(argc, argv, parsed))
    return *rc;
  auto& opt = parsed.options;
  if (opt.app_names.empty()) opt.app_names = {"LU"};

  analysis::CurveParams cp;

  driver::SweepSpec spec;
  spec.apps = opt.app_names;
  spec.node_counts = {kNodes};
  for (const Topology topo : kTopologies)
    spec.detectors.push_back(topology_name(topo));
  spec.batches = opt.batches;
  spec.scale = opt.scale;

  return bench::sharded_sweep<sim::RunSummary, TopologyRow>(
      spec.expand(), opt, "ablation_topology",
      [&opt](const driver::SpecPoint& pt) {
        const auto& app = apps::app_by_name(pt.app);
        MachineConfig cfg = default_config(pt.nodes);
        cfg.network.topology = topology_of(pt);
        cfg.phase.interval_instructions =
            apps::scaled_interval(app.name, pt.scale);
        cfg.batch_size = pt.batch != 0 ? pt.batch : opt.batch_size;
        cfg.seed = topology_seed(pt);
        sim::Machine machine(cfg);
        return machine.run(app.factory(pt.scale));
      },
      [&cp](const driver::SpecPoint& pt, sim::RunSummary&& run) {
        const auto bbv = analysis::bbv_cov_curve(run.procs, cp);
        const auto ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
        TopologyRow row;
        row.diameter = net::TopologyModel(topology_of(pt), kNodes).diameter();
        row.bbv15 = analysis::cov_at_phases(bbv, 15);
        row.ddv15 = analysis::cov_at_phases(ddv, 15);
        double cpi = 0.0;
        for (unsigned p = 0; p < kNodes; ++p) cpi += run.cpi(p);
        row.mean_cpi = cpi / kNodes;
        return row;
      },
      topology_seed,
      [](const driver::SpecPoint&, const TopologyRow& row) {
        return shard::JsonObject()
            .add("diameter", static_cast<std::uint64_t>(row.diameter))
            .add("mean_cpi", row.mean_cpi)
            .add("bbv_cov15", row.bbv15)
            .add("ddv_cov15", row.ddv15)
            .str();
      });
}
