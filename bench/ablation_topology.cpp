// ablation_topology.cpp — the DDV's distance matrix D is "a matrix of
// pre-programmed constants" derived from the interconnect. This harness
// runs the same workload on a 16-node hypercube, 2-D mesh, 2-D torus, and
// ring (all supported by the network model), and reports how topology —
// and with it D's structure and the machine's latency spread — shifts
// both detectors' operating points.
#include <cstdio>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto opt = bench::parse_options(argc, argv);
  if (opt.app_names.empty()) opt.app_names = {"LU"};

  std::printf("== Ablation: interconnect topology (16 nodes, scale: %s) "
              "==\n\n",
              apps::scale_name(opt.scale));
  analysis::CurveParams cp;

  for (const auto& name : opt.app_names) {
    const auto& app = apps::app_by_name(name);
    TableWriter t({"topology", "diameter", "mean CPI", "BBV CoV@15",
                   "DDV CoV@15", "ratio"});
    for (const Topology topo : {Topology::kHypercube, Topology::kTorus2D,
                                Topology::kMesh2D, Topology::kRing}) {
      MachineConfig cfg = default_config(16);
      cfg.network.topology = topo;
      cfg.phase.interval_instructions =
          apps::scaled_interval(app.name, opt.scale);
      sim::Machine machine(cfg);
      const auto run = machine.run(app.factory(opt.scale));
      const auto bbv = analysis::bbv_cov_curve(run.procs, cp);
      const auto ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
      const double b = analysis::cov_at_phases(bbv, 15);
      const double d = analysis::cov_at_phases(ddv, 15);
      double cpi = 0.0;
      for (unsigned p = 0; p < 16; ++p) cpi += run.cpi(p);
      t.add_row({topology_name(topo),
                 std::to_string(
                     net::TopologyModel(topo, 16).diameter()),
                 TableWriter::fmt(cpi / 16, 3), TableWriter::fmt(b, 3),
                 TableWriter::fmt(d, 3),
                 TableWriter::fmt(d / std::max(b, 1e-9), 3)});
    }
    std::printf("-- %s --\n%s\n", app.name.c_str(), t.to_text().c_str());
  }
  return 0;
}
