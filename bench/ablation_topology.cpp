// ablation_topology.cpp — the DDV's distance matrix D is "a matrix of
// pre-programmed constants" derived from the interconnect. This harness
// runs the same workload on a 16-node hypercube, 2-D mesh, 2-D torus, and
// ring (all supported by the network model), and reports how topology —
// and with it D's structure and the machine's latency spread — shifts
// both detectors' operating points.
//
// The app × topology product runs on the experiment driver (--threads=N)
// with the topology carried on the SweepSpec's variant axis.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "analysis/curve.hpp"
#include "bench/bench_util.hpp"
#include "common/table_writer.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  auto parsed = bench::parse_options(argc, argv);
  if (!parsed.ok) return bench::usage_error(parsed);
  auto& opt = parsed.options;
  if (opt.app_names.empty()) opt.app_names = {"LU"};
  constexpr unsigned kNodes = 16;

  std::printf("== Ablation: interconnect topology (16 nodes, scale: %s) "
              "==\n\n",
              apps::scale_name(opt.scale));
  analysis::CurveParams cp;

  const Topology topologies[] = {Topology::kHypercube, Topology::kTorus2D,
                                 Topology::kMesh2D, Topology::kRing};

  driver::SweepSpec spec;
  spec.apps = opt.app_names;
  spec.node_counts = {kNodes};
  for (const Topology topo : topologies)
    spec.detectors.push_back(topology_name(topo));
  spec.scale = opt.scale;
  const auto points = spec.expand();

  // The variant axis carries the topology by name; map it back rather
  // than inferring from the point's index.
  auto topology_of = [&](const driver::SpecPoint& pt) {
    for (const Topology topo : topologies)
      if (pt.detector == topology_name(topo)) return topo;
    throw std::runtime_error("unknown topology variant: " + pt.detector);
  };

  const driver::ExperimentRunner runner(opt.threads);
  const auto results = runner.map<sim::RunSummary>(
      points, [&](const driver::SpecPoint& pt) {
        const auto& app = apps::app_by_name(pt.app);
        MachineConfig cfg = default_config(pt.nodes);
        cfg.network.topology = topology_of(pt);
        cfg.phase.interval_instructions =
            apps::scaled_interval(app.name, pt.scale);
        // Seed from the point WITHOUT the ablated axis: all four topology
        // rows of an app must share one RNG stream, or the comparison
        // would mislabel seed-induced variation as a topology effect.
        driver::SpecPoint seed_pt = pt;
        seed_pt.detector.clear();
        cfg.seed = driver::spec_seed(seed_pt);
        sim::Machine machine(cfg);
        return machine.run(app.factory(pt.scale));
      });

  // One table per app: consecutive chunks of the topology axis.
  const std::size_t per_app = std::size(topologies);
  for (std::size_t base = 0; base < results.size(); base += per_app) {
    TableWriter t({"topology", "diameter", "mean CPI", "BBV CoV@15",
                   "DDV CoV@15", "ratio"});
    for (std::size_t k = 0; k < per_app; ++k) {
      const auto& run = results[base + k];
      const Topology topo = topology_of(points[base + k]);
      const auto bbv = analysis::bbv_cov_curve(run.procs, cp);
      const auto ddv = analysis::bbv_ddv_cov_curve(run.procs, cp);
      const double b = analysis::cov_at_phases(bbv, 15);
      const double d = analysis::cov_at_phases(ddv, 15);
      double cpi = 0.0;
      for (unsigned p = 0; p < kNodes; ++p) cpi += run.cpi(p);
      t.add_row({topology_name(topo),
                 std::to_string(
                     net::TopologyModel(topo, kNodes).diameter()),
                 TableWriter::fmt(cpi / kNodes, 3), TableWriter::fmt(b, 3),
                 TableWriter::fmt(d, 3),
                 TableWriter::fmt(d / std::max(b, 1e-9), 3)});
    }
    std::printf("-- %s --\n%s\n", points[base].app.c_str(),
                t.to_text().c_str());
  }
  return 0;
}
