// dsm_report.cpp — offline consumer for the NDJSON result store: merge
// per-shard files collected from a fleet, rebuild the human tables from
// merged records, validate record files, and plan per-host shard command
// lines.
//
//   dsm_report merge s0.ndjson s1.ndjson ... > merged.ndjson
//       K-way merge of per-shard record files in spec order — the same
//       merge_streams the in-process `--shards=N` orchestrator runs over
//       worker pipes, so the output is byte-identical to a single-host
//       `--shards=N` (and `--shard=0/1`) stream. Fails loudly on gaps,
//       duplicates, mixed benches, or unparsable lines.
//
//   dsm_report render [--csv=DIR] merged.ndjson
//       Rebuilds the harness's human tables/curves (and CSV exports) from
//       a merged record file via the renderer registry in src/report —
//       the same code the live harness runs, so the output is
//       byte-identical to the live run. `-` reads stdin. The exit code is
//       the renderer's verdict (e.g. overhead_bandwidth's paper claim).
//
//   dsm_report validate [--merged] file.ndjson ...
//       Strict schema/ordering validation of record files: per-shard
//       files must be strictly increasing in spec index, merged files
//       contiguous from 0 (--merged).
//
//   dsm_report plan --bin=PATH --shards=N [--out=DIR] [--sbatch] [-- f...]
//       Prints the per-host worker command lines (or an sbatch job-array
//       script) for a fleet run: launch, collect the files, merge,
//       render.
//
//   dsm_report stats [--diff B.ndjson] file.ndjson
//       Renders the deterministic observability snapshots (the optional
//       `obs` envelope field records gain under --obs-stats) as per-record
//       counter/histogram tables. With --diff, compares the snapshots of
//       two record files pairwise (per-counter delta + percent columns) —
//       one command to spot a protocol or perf regression in coherence
//       traffic. Exits 1 when no record carries a snapshot.
//
//   dsm_report timeline [--top=K] [--rows=N] [--chrome=FILE] file.ndjson
//       Renders the phase-attributed interval timelines (the optional
//       `obs_intervals` field records gain under --obs-intervals):
//       interval × metric series, per-phase means, the phase-transition
//       matrix, and the top metric deltas across the dominant transition.
//       Reconciles interval sums against the end-of-run snapshot when
//       both fields are present. --chrome additionally emits Chrome
//       counter ("C") events that overlay `dsm_report trace` output.
//
//   dsm_report progress [--lease=FILE] hb.ndjson ...
//       Renders a fleet status table from collected worker heartbeat
//       files (bench --heartbeat=FILE / launch_shards.sh): per worker
//       done/total, last spec index, wall time, peak RSS, and the age of
//       the file's last write — a worker whose heartbeat file stopped
//       aging out is wedged. With --lease=FILE (the coordinator's
//       --lease-log ledger) also prints each worker's lease state
//       (leased/retrying/dead/done), current range, and respawn count.
//
//   dsm_report resume --total=N store.ndjson
//       Dry-run of the fleet's --resume=FILE scan: reports the complete
//       records, duplicates, a truncated final record (crash mid-write,
//       recoverable), and the gap spec indices a resumed fleet would
//       lease. Exits 0 when the store already covers [0,N), 1 when gaps
//       remain, 2 on hard corruption.
//
//   dsm_report trace [--validate] trace.bin
//       Converts a binary event-trace dump (bench --trace=FILE) to Chrome
//       trace-event JSON on stdout (load in chrome://tracing or Perfetto;
//       1 simulated cycle renders as 1 µs). --validate checks the file
//       structurally and prints a per-node summary instead; conversion
//       prints per-node drop counts and ring utilization to stderr so an
//       overflowed ring is never a silently truncated timeline.
#include <sys/stat.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "report/record_reader.hpp"
#include "report/renderer.hpp"
#include "report/timeline.hpp"
#include "shard/fleet_msg.hpp"
#include "shard/heartbeat.hpp"
#include "shard/orchestrator.hpp"
#include "shard/resume.hpp"
#include "shard/shard_plan.hpp"

namespace {

using namespace dsm;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "  merge FILE...              merge per-shard NDJSON files to stdout\n"
      "                             (byte-identical to --shards=N output)\n"
      "  render [--csv=DIR] FILE    rebuild the harness's human tables from\n"
      "                             a merged record file ('-' = stdin)\n"
      "  validate [--merged] FILE...  strict-check record files\n"
      "  plan --bin=PATH --shards=N [--out=DIR] [--sbatch] [-- FLAGS...]\n"
      "                             print per-host shard command lines\n"
      "  stats [--diff B] FILE      print the observability snapshots\n"
      "                             (--obs-stats records' 'obs' field);\n"
      "                             --diff compares two record files with\n"
      "                             per-counter delta and percent columns\n"
      "  timeline [--top=K] [--rows=N] [--chrome=FILE] FILE\n"
      "                             render phase-attributed interval\n"
      "                             timelines (--obs-intervals records);\n"
      "                             --chrome also emits counter events\n"
      "  progress [--lease=FILE] FILE...\n"
      "                             fleet status table from worker\n"
      "                             heartbeat files (bench --heartbeat),\n"
      "                             with last-write age; --lease adds the\n"
      "                             coordinator's lease-ledger state\n"
      "  resume --total=N FILE      dry-run the fleet's --resume scan:\n"
      "                             complete records, duplicates, a\n"
      "                             truncated tail, and the gap indices a\n"
      "                             resumed fleet would lease\n"
      "  trace [--validate] FILE    convert a binary event trace (bench\n"
      "                             --trace=FILE) to Chrome trace JSON;\n"
      "                             --validate checks + summarizes instead\n",
      argv0);
  return 2;
}

struct OpenFile {
  std::FILE* f = nullptr;
  ~OpenFile() {
    if (f != nullptr && f != stdin) std::fclose(f);
  }
};

bool open_input(const std::string& path, OpenFile* out) {
  if (path == "-") {
    out->f = stdin;
    return true;
  }
  out->f = std::fopen(path.c_str(), "r");
  if (out->f == nullptr) {
    std::fprintf(stderr, "dsm_report: cannot open %s\n", path.c_str());
    return false;
  }
  return true;
}

int cmd_merge(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "dsm_report merge: no input files\n");
    return 2;
  }
  std::vector<OpenFile> opened(files.size());
  std::vector<shard::FileLineSource> line_sources;
  line_sources.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!open_input(files[i], &opened[i])) return 1;
    line_sources.emplace_back(opened[i].f);
  }
  std::vector<shard::LineSource*> sources;
  for (auto& s : line_sources) sources.push_back(&s);

  std::string error;
  const bool ok = shard::merge_streams(
      sources,
      [](const std::string& line) {
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
      },
      &error);
  std::fflush(stdout);
  if (!ok) {
    std::fprintf(stderr, "dsm_report merge: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

int cmd_render(const std::vector<std::string>& args) {
  report::RenderOptions opt;
  std::string path;
  for (const auto& a : args) {
    if (a.rfind("--csv=", 0) == 0) {
      opt.csv_dir = a.substr(6);
    } else if (!a.empty() && (a[0] != '-' || a == "-")) {
      if (!path.empty()) {
        std::fprintf(stderr,
                     "dsm_report render: exactly one input file (got '%s' "
                     "and '%s')\n",
                     path.c_str(), a.c_str());
        return 2;
      }
      path = a;
    } else {
      std::fprintf(stderr, "dsm_report render: unknown option %s\n",
                   a.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "dsm_report render: no input file\n");
    return 2;
  }
  OpenFile in;
  if (!open_input(path, &in)) return 1;
  shard::FileLineSource source(in.f);
  std::string error;
  const int rc = report::render_stream(source, opt, &error);
  if (!error.empty())
    std::fprintf(stderr, "dsm_report render: %s: %s\n", path.c_str(),
                 error.c_str());
  return rc;
}

int cmd_validate(const std::vector<std::string>& args) {
  report::StreamKind kind = report::StreamKind::kShardSlice;
  std::vector<std::string> files;
  for (const auto& a : args) {
    if (a == "--merged") kind = report::StreamKind::kMergedStream;
    else files.push_back(a);
  }
  if (files.empty()) {
    std::fprintf(stderr, "dsm_report validate: no input files\n");
    return 2;
  }
  int rc = 0;
  for (const auto& path : files) {
    OpenFile in;
    if (!open_input(path, &in)) {
      rc = 1;  // report every file, same as the validation-error path
      continue;
    }
    shard::FileLineSource source(in.f);
    report::RecordReader reader(source, kind);
    report::RecordView rec;
    std::size_t first = 0, last = 0;
    while (reader.next(&rec)) {
      if (reader.records() == 1) first = rec.spec_index;
      last = rec.spec_index;
    }
    if (!reader.ok()) {
      std::fprintf(stderr, "dsm_report validate: %s: %s\n", path.c_str(),
                   reader.error().c_str());
      rc = 1;
      continue;
    }
    if (reader.records() == 0)
      std::printf("%s: OK, 0 records\n", path.c_str());
    else
      std::printf("%s: OK, %zu records, bench '%s', spec indices %zu..%zu\n",
                  path.c_str(), reader.records(), reader.bench().c_str(),
                  first, last);
  }
  return rc;
}

/// One record's deterministic snapshot, counters in snapshot order.
struct ObsSnapshot {
  std::string key;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Collects the `obs` counter snapshots of every record in `path`.
bool collect_snapshots(const std::string& path,
                       std::vector<ObsSnapshot>* out) {
  OpenFile in;
  if (!open_input(path, &in)) return false;
  shard::FileLineSource source(in.f);
  report::RecordReader reader(source, report::StreamKind::kShardSlice);
  report::RecordView rec;
  while (reader.next(&rec)) {
    const report::JsonValue* obs = rec.metrics.find("obs");
    if (obs == nullptr) continue;
    const report::JsonValue* counters = obs->find("counters");
    if (counters == nullptr || !counters->is_object()) continue;
    ObsSnapshot snap;
    snap.key = rec.key;
    for (const auto& [name, v] : counters->members())
      snap.counters.emplace_back(name, v.unsigned_int());
    out->push_back(std::move(snap));
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "dsm_report stats: %s: %s\n", path.c_str(),
                 reader.error().c_str());
    return false;
  }
  return true;
}

/// `stats --diff A B`: pair the two files' snapshots in record order and
/// print per-counter delta + percent columns. Counters present on only
/// one side are listed with '-' on the other.
int cmd_stats_diff(const std::string& path_a, const std::string& path_b) {
  std::vector<ObsSnapshot> a, b;
  if (!collect_snapshots(path_a, &a) || !collect_snapshots(path_b, &b))
    return 1;
  if (a.empty() || b.empty()) {
    std::fprintf(stderr,
                 "dsm_report stats: --diff needs 'obs' snapshots on both "
                 "sides (%s: %zu, %s: %zu) — run with --obs-stats\n",
                 path_a.c_str(), a.size(), path_b.c_str(), b.size());
    return 1;
  }
  if (a.size() != b.size())
    std::fprintf(stderr,
                 "dsm_report stats: warning: %zu vs %zu snapshot records; "
                 "diffing the first %zu pairs\n",
                 a.size(), b.size(), std::min(a.size(), b.size()));
  const std::size_t pairs = std::min(a.size(), b.size());
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto& sa = a[p];
    const auto& sb = b[p];
    std::printf("%s vs %s\n", sa.key.c_str(), sb.key.c_str());
    std::printf("  %-36s %14s %14s %14s %10s\n", "counter", "A", "B",
                "delta", "pct");
    auto value_in = [](const ObsSnapshot& s, const std::string& name,
                       std::uint64_t* v) {
      for (const auto& [n, val] : s.counters)
        if (n == name) {
          *v = val;
          return true;
        }
      return false;
    };
    for (const auto& [name, va] : sa.counters) {
      std::uint64_t vb = 0;
      if (!value_in(sb, name, &vb)) {
        std::printf("  %-36s %14" PRIu64 " %14s %14s %10s\n", name.c_str(),
                    va, "-", "-", "-");
        continue;
      }
      const long long delta = static_cast<long long>(vb) -
                              static_cast<long long>(va);
      if (va == 0)
        std::printf("  %-36s %14" PRIu64 " %14" PRIu64 " %+14lld %10s\n",
                    name.c_str(), va, vb, delta, delta == 0 ? "0%" : "new");
      else
        std::printf("  %-36s %14" PRIu64 " %14" PRIu64 " %+14lld %+9.2f%%\n",
                    name.c_str(), va, vb, delta,
                    100.0 * static_cast<double>(delta) /
                        static_cast<double>(va));
    }
    for (const auto& [name, vb] : sb.counters) {
      std::uint64_t dummy = 0;
      if (!value_in(sa, name, &dummy))
        std::printf("  %-36s %14s %14" PRIu64 " %14s %10s\n", name.c_str(),
                    "-", vb, "-", "-");
    }
  }
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  std::string path;
  bool diff = false;
  std::vector<std::string> diff_paths;
  for (const auto& a : args) {
    if (a == "--diff") {
      diff = true;
    } else if (!a.empty() && (a[0] != '-' || a == "-")) {
      if (diff) {
        diff_paths.push_back(a);
        continue;
      }
      if (!path.empty()) {
        std::fprintf(stderr,
                     "dsm_report stats: exactly one input file (got '%s' "
                     "and '%s')\n",
                     path.c_str(), a.c_str());
        return 2;
      }
      path = a;
    } else {
      std::fprintf(stderr, "dsm_report stats: unknown option %s\n", a.c_str());
      return 2;
    }
  }
  if (diff) {
    if (diff_paths.size() != 2 || !path.empty()) {
      std::fprintf(stderr,
                   "dsm_report stats: --diff takes exactly two record files "
                   "(A.ndjson B.ndjson)\n");
      return 2;
    }
    return cmd_stats_diff(diff_paths[0], diff_paths[1]);
  }
  if (path.empty()) {
    std::fprintf(stderr, "dsm_report stats: no input file\n");
    return 2;
  }
  OpenFile in;
  if (!open_input(path, &in)) return 1;
  shard::FileLineSource source(in.f);
  report::RecordReader reader(source, report::StreamKind::kShardSlice);
  report::RecordView rec;
  std::size_t with_obs = 0;
  while (reader.next(&rec)) {
    const report::JsonValue* obs = rec.metrics.find("obs");
    if (obs == nullptr) continue;
    ++with_obs;
    std::printf("%s\n", rec.key.c_str());
    const report::JsonValue* counters = obs->find("counters");
    if (counters != nullptr && counters->is_object()) {
      for (const auto& [name, v] : counters->members())
        std::printf("  %-36s %s\n", name.c_str(), v.raw_number().c_str());
    }
    const report::JsonValue* hists = obs->find("histograms");
    if (hists != nullptr && hists->is_object()) {
      for (const auto& [name, v] : hists->members()) {
        std::printf("  %-36s [", name.c_str());
        const char* sep = "";
        for (const auto& b : v.items()) {
          std::printf("%s%s", sep, b.raw_number().c_str());
          sep = ", ";
        }
        std::printf("]\n");
      }
    }
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "dsm_report stats: %s: %s\n", path.c_str(),
                 reader.error().c_str());
    return 1;
  }
  if (with_obs == 0) {
    std::fprintf(stderr,
                 "dsm_report stats: %s: no record carries an 'obs' snapshot "
                 "(run the harness with --obs-stats)\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

int cmd_timeline(const std::vector<std::string>& args) {
  report::TimelineOptions opt;
  std::string path;
  for (const auto& a : args) {
    if (a.rfind("--top=", 0) == 0) {
      const unsigned long k = std::strtoul(a.c_str() + 6, nullptr, 10);
      if (k < 1) {
        std::fprintf(stderr, "dsm_report timeline: bad --top value\n");
        return 2;
      }
      opt.top_k = static_cast<unsigned>(k);
    } else if (a.rfind("--rows=", 0) == 0) {
      opt.max_rows = static_cast<unsigned>(
          std::strtoul(a.c_str() + 7, nullptr, 10));
    } else if (a.rfind("--chrome=", 0) == 0) {
      opt.chrome_path = a.substr(9);
      if (opt.chrome_path.empty()) {
        std::fprintf(stderr, "dsm_report timeline: empty --chrome path\n");
        return 2;
      }
    } else if (!a.empty() && (a[0] != '-' || a == "-")) {
      if (!path.empty()) {
        std::fprintf(stderr,
                     "dsm_report timeline: exactly one input file (got '%s' "
                     "and '%s')\n",
                     path.c_str(), a.c_str());
        return 2;
      }
      path = a;
    } else {
      std::fprintf(stderr, "dsm_report timeline: unknown option %s\n",
                   a.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "dsm_report timeline: no input file\n");
    return 2;
  }
  OpenFile in;
  if (!open_input(path, &in)) return 1;
  shard::FileLineSource source(in.f);
  return report::render_timeline(source, opt, stdout);
}

/// Age of `path`'s last write, as "3s"/"5m"/"2h" — the liveness signal a
/// human reads off the table: a heartbeat file that stopped aging out
/// means its worker is wedged (or done). "-" when unstattable.
std::string file_age(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return "-";
  const std::time_t now = std::time(nullptr);
  long age = static_cast<long>(now - st.st_mtime);
  if (age < 0) age = 0;
  char buf[32];
  if (age < 120)
    std::snprintf(buf, sizeof buf, "%lds", age);
  else if (age < 7200)
    std::snprintf(buf, sizeof buf, "%ldm", age / 60);
  else
    std::snprintf(buf, sizeof buf, "%ldh", age / 3600);
  return buf;
}

int cmd_progress(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::string lease_path;
  for (const auto& a : args) {
    if (a.rfind("--lease=", 0) == 0) {
      lease_path = a.substr(8);
      if (lease_path.empty()) {
        std::fprintf(stderr, "dsm_report progress: empty --lease path\n");
        return 2;
      }
    } else if (!a.empty() && a[0] != '-') {
      files.push_back(a);
    } else {
      std::fprintf(stderr, "dsm_report progress: unknown option %s\n",
                   a.c_str());
      return 2;
    }
  }
  if (files.empty() && lease_path.empty()) {
    std::fprintf(stderr,
                 "dsm_report progress: no heartbeat files (and no --lease)\n");
    return 2;
  }

  std::size_t alive = 0;
  std::uint64_t fleet_done = 0, fleet_total = 0;
  if (!files.empty()) {
    std::printf("%-28s %-20s %8s %6s %8s %9s %9s %5s %s\n", "file", "bench",
                "shard", "done", "total", "wall_ms", "rss_kb", "age",
                "state");
    for (const auto& path : files) {
      OpenFile in;
      if (!open_input(path, &in)) {
        std::printf("%-28s %-20s %8s %6s %8s %9s %9s %5s %s\n", path.c_str(),
                    "-", "-", "-", "-", "-", "-", "-", "missing");
        continue;
      }
      // Last parsable line = the worker's current state.
      shard::Heartbeat hb;
      bool have = false;
      {
        shard::FileLineSource source(in.f);
        shard::Heartbeat parsed;
        for (std::string line; source.next(line);)
          if (shard::parse_heartbeat(line, &parsed)) {
            hb = parsed;
            have = true;
          }
      }
      if (!have) {
        std::printf("%-28s %-20s %8s %6s %8s %9s %9s %5s %s\n", path.c_str(),
                    "-", "-", "-", "-", "-", "-", "-", "unparsable");
        continue;
      }
      ++alive;
      fleet_done += hb.done;
      fleet_total += hb.total;
      std::printf("%-28s %-20s %8s %6" PRIu64 " %8" PRIu64 " %9" PRIu64
                  " %9" PRIu64 " %5s %s\n",
                  path.c_str(), hb.bench.c_str(), hb.shard.c_str(), hb.done,
                  hb.total, hb.wall_ms, hb.maxrss_kb, file_age(path).c_str(),
                  hb.done >= hb.total ? "done" : "running");
    }
    std::printf("fleet: %zu/%zu workers reporting, %" PRIu64 "/%" PRIu64
                " specs done\n",
                alive, files.size(), fleet_done, fleet_total);
  }

  if (!lease_path.empty()) {
    OpenFile in;
    if (!open_input(lease_path, &in)) return 1;
    // Last event per worker slot = its current lease state; the ledger
    // is append-only so a plain forward scan suffices.
    std::map<std::uint64_t, shard::LeaseEvent> last;
    std::map<std::uint64_t, std::uint64_t> leases_taken;
    std::size_t bad_lines = 0;
    {
      shard::FileLineSource source(in.f);
      shard::LeaseEvent ev;
      for (std::string line; source.next(line);) {
        if (!shard::parse_lease_event(line, &ev)) {
          ++bad_lines;
          continue;
        }
        if (ev.state == "leased") ++leases_taken[ev.worker];
        last[ev.worker] = ev;
      }
    }
    if (last.empty()) {
      std::fprintf(stderr,
                   "dsm_report progress: %s: no lease events (is this a "
                   "--lease-log file?)\n",
                   lease_path.c_str());
      return 1;
    }
    if (bad_lines > 0)
      std::fprintf(stderr,
                   "dsm_report progress: %s: skipped %zu unparsable lines\n",
                   lease_path.c_str(), bad_lines);
    std::printf("%slease ledger (%s):\n", files.empty() ? "" : "\n",
                lease_path.c_str());
    std::printf("%8s %-10s %16s %8s %8s %10s\n", "worker", "state",
                "lease", "leases", "retries", "wall_ms");
    for (const auto& [worker, ev] : last) {
      char range[32];
      if (ev.state == "leased")
        std::snprintf(range, sizeof range, "[%" PRIu64 ",%" PRIu64 ")",
                      ev.lo, ev.hi);
      else
        std::snprintf(range, sizeof range, "-");
      std::printf("%8" PRIu64 " %-10s %16s %8" PRIu64 " %8" PRIu64
                  " %10" PRIu64 "\n",
                  worker, ev.state.c_str(), range, leases_taken[worker],
                  ev.retries, ev.wall_ms);
    }
  }
  return (files.empty() || alive > 0) ? 0 : 1;
}

int cmd_resume(const std::vector<std::string>& args) {
  std::string path;
  std::uint64_t total = 0;
  bool have_total = false;
  for (const auto& a : args) {
    if (a.rfind("--total=", 0) == 0) {
      char* end = nullptr;
      total = std::strtoull(a.c_str() + 8, &end, 10);
      if (end == a.c_str() + 8 || *end != '\0') {
        std::fprintf(stderr, "dsm_report resume: bad --total value\n");
        return 2;
      }
      have_total = true;
    } else if (!a.empty() && a[0] != '-') {
      if (!path.empty()) {
        std::fprintf(stderr,
                     "dsm_report resume: exactly one store file (got '%s' "
                     "and '%s')\n",
                     path.c_str(), a.c_str());
        return 2;
      }
      path = a;
    } else {
      std::fprintf(stderr, "dsm_report resume: unknown option %s\n",
                   a.c_str());
      return 2;
    }
  }
  if (path.empty() || !have_total) {
    std::fprintf(stderr,
                 "dsm_report resume: need --total=N (the sweep size — the "
                 "harness prints it as 'N/N specs merged') and a store "
                 "file\n");
    return 2;
  }
  const shard::StoreScan scan = shard::scan_store(path);
  if (!scan.ok) {
    std::fprintf(stderr, "dsm_report resume: %s: %s\n", path.c_str(),
                 scan.error.c_str());
    return 2;
  }
  const std::string bench_note =
      scan.bench.empty() ? "" : ", bench '" + scan.bench + "'";
  std::printf("%s: %zu complete records%s\n", path.c_str(),
              scan.records.size(), bench_note.c_str());
  if (scan.duplicates > 0)
    std::printf("  %zu duplicate record(s) discarded (first-complete-wins)\n",
                scan.duplicates);
  if (scan.truncated_tail)
    std::printf("  truncated final record (%zu bytes) — a worker died "
                "mid-write; recoverable, its index is a gap\n",
                scan.tail.size());
  const auto gaps =
      shard::store_gaps(scan, static_cast<std::size_t>(total));
  if (gaps.empty()) {
    std::printf("  store covers [0,%" PRIu64 "): nothing to resume\n", total);
    return 0;
  }
  // Print the gaps as compressed ranges: thousands of missing indices
  // must not scroll the useful summary away.
  std::printf("  %zu gap(s) a resumed fleet would lease:", gaps.size());
  std::size_t run_lo = gaps[0], run_hi = gaps[0];
  auto flush = [&] {
    if (run_lo == run_hi)
      std::printf(" %zu", run_lo);
    else
      std::printf(" %zu-%zu", run_lo, run_hi);
  };
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    if (gaps[i] == run_hi + 1) {
      run_hi = gaps[i];
    } else {
      flush();
      run_lo = run_hi = gaps[i];
    }
  }
  flush();
  std::printf("\n  resume with: <harness> --shards=N --resume=%s > "
              "complete.ndjson\n",
              path.c_str());
  return 1;
}

/// DataSource names in coh::DataSource declaration order — kept as a
/// local table because dsm_obs (the trace format owner) must not depend
/// on dsm_coherence.
const char* fill_source_name(unsigned source) {
  static const char* kNames[] = {"L1",        "L2",          "LocalMem",
                                 "RemoteMem", "RemoteCache", "Upgrade"};
  return source < 6 ? kNames[source] : "?";
}

int cmd_trace(const std::vector<std::string>& args) {
  bool validate = false;
  std::string path;
  for (const auto& a : args) {
    if (a == "--validate") {
      validate = true;
    } else if (!a.empty() && a[0] != '-') {
      if (!path.empty()) {
        std::fprintf(stderr,
                     "dsm_report trace: exactly one input file (got '%s' "
                     "and '%s')\n",
                     path.c_str(), a.c_str());
        return 2;
      }
      path = a;
    } else {
      std::fprintf(stderr, "dsm_report trace: unknown option %s\n", a.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "dsm_report trace: no input file\n");
    return 2;
  }
  obs::TraceFileData data;
  std::string err;
  if (!obs::read_trace_file(path, &data, &err)) {
    std::fprintf(stderr, "dsm_report trace: %s: %s\n", path.c_str(),
                 err.c_str());
    return 1;
  }
  if (validate) {
    std::uint64_t kept = 0, dropped = 0;
    for (std::size_t n = 0; n < data.nodes.size(); ++n) {
      const auto& node = data.nodes[n];
      std::uint64_t prev_ts = 0;
      for (const auto& ev : node.events) {
        if (std::strcmp(obs::trace_kind_name(ev.kind), "?") == 0) {
          std::fprintf(stderr,
                       "dsm_report trace: %s: node %zu holds unknown event "
                       "kind %u\n",
                       path.c_str(), n, ev.kind);
          return 1;
        }
        // A node's accesses start at non-decreasing cycles (its clock
        // only advances), so its kMissStart timestamps must be monotone
        // — the check that catches ring corruption. Other kinds carry
        // timestamps from inside an access (kDirRequest lands after the
        // request's network hop; kMissFill deliberately repeats the
        // START cycle so its Chrome slice spans the access), so they
        // legitimately interleave backwards.
        if (ev.kind == obs::TraceEvent::kMissStart) {
          if (ev.ts < prev_ts) {
            std::fprintf(stderr,
                         "dsm_report trace: %s: node %zu miss-start "
                         "timestamps regress (%" PRIu64 " after %" PRIu64
                         ")\n",
                         path.c_str(), n, ev.ts, prev_ts);
            return 1;
          }
          prev_ts = ev.ts;
        }
      }
      kept += node.events.size();
      dropped += node.dropped;
    }
    std::printf("%s: OK, %zu nodes, capacity %u events/node, %" PRIu64
                " events kept, %" PRIu64 " dropped\n",
                path.c_str(), data.nodes.size(), data.capacity_per_node, kept,
                dropped);
    return 0;
  }
  // Chrome trace-event JSON (the "JSON array format" with a traceEvents
  // wrapper). One viewer thread per simulated node; 1 cycle = 1 µs of
  // viewer time. kMissFill events are self-contained complete ("X")
  // slices — ts is the access cycle, dur its total latency — so ring
  // drops can never orphan a begin/end pair.
  std::printf("{\"traceEvents\":[");
  const char* sep = "\n";
  for (std::size_t n = 0; n < data.nodes.size(); ++n) {
    std::printf("%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%zu,\"args\":{\"name\":\"node %zu\"}}",
                sep, n, n);
    sep = ",\n";
  }
  for (std::size_t n = 0; n < data.nodes.size(); ++n) {
    for (const auto& ev : data.nodes[n].events) {
      const unsigned write = ev.flags & obs::TraceEvent::kWriteBit;
      if (ev.kind == obs::TraceEvent::kMissFill) {
        const unsigned source = ev.flags >> obs::TraceEvent::kSourceShift;
        std::printf("%s{\"name\":\"%s\",\"cat\":\"mem\",\"ph\":\"X\","
                    "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                    ",\"pid\":0,\"tid\":%u,\"args\":{\"line\":\"0x%" PRIx64
                    "\",\"write\":%u,\"source\":\"%s\",\"home\":%u}}",
                    sep, obs::trace_kind_name(ev.kind), ev.ts, ev.arg,
                    ev.node, ev.addr, write, fill_source_name(source),
                    ev.aux);
      } else {
        std::printf("%s{\"name\":\"%s\",\"cat\":\"coh\",\"ph\":\"i\","
                    "\"s\":\"t\",\"ts\":%" PRIu64
                    ",\"pid\":0,\"tid\":%u,\"args\":{\"line\":\"0x%" PRIx64
                    "\",\"write\":%u,\"arg\":%" PRIu64 ",\"peer\":%u}}",
                    sep, obs::trace_kind_name(ev.kind), ev.ts, ev.node,
                    ev.addr, write, ev.arg, ev.aux);
      }
      sep = ",\n";
    }
  }
  std::printf("\n]}\n");
  std::fflush(stdout);
  // Ring health on stderr: a full ring overwrote its oldest events, so a
  // "clean" conversion might still be a truncated timeline — make that
  // visible instead of silent.
  std::uint64_t total_dropped = 0;
  for (std::size_t n = 0; n < data.nodes.size(); ++n) {
    const auto& node = data.nodes[n];
    const double util =
        data.capacity_per_node == 0
            ? 0.0
            : 100.0 * static_cast<double>(node.events.size()) /
                  static_cast<double>(data.capacity_per_node);
    std::fprintf(stderr,
                 "dsm_report trace: node %zu: %zu/%u events (%.1f%% of "
                 "ring), %" PRIu64 " dropped\n",
                 n, node.events.size(), data.capacity_per_node, util,
                 node.dropped);
    total_dropped += node.dropped;
  }
  if (total_dropped > 0)
    std::fprintf(stderr,
                 "dsm_report trace: warning: %" PRIu64
                 " events were overwritten before the dump — the timeline "
                 "is truncated; rerun with a larger ring "
                 "(ObsConfig::trace_events_per_node)\n",
                 total_dropped);
  return 0;
}

int cmd_plan(const std::vector<std::string>& args) {
  std::string bin, out_dir = ".";
  unsigned long shards = 0;
  bool sbatch = false;
  std::vector<std::string> flags;
  bool passthrough = false;
  for (const auto& a : args) {
    if (passthrough) {
      flags.push_back(a);
    } else if (a == "--") {
      passthrough = true;
    } else if (a.rfind("--bin=", 0) == 0) {
      bin = a.substr(6);
    } else if (a.rfind("--out=", 0) == 0) {
      out_dir = a.substr(6);
    } else if (a.rfind("--shards=", 0) == 0) {
      shards = std::strtoul(a.c_str() + 9, nullptr, 10);
    } else if (a == "--sbatch") {
      sbatch = true;
    } else {
      std::fprintf(stderr, "dsm_report plan: unknown option %s\n", a.c_str());
      return 2;
    }
  }
  if (bin.empty() || shards < 1 || shards > shard::kMaxShards) {
    std::fprintf(stderr,
                 "dsm_report plan: need --bin=PATH and --shards=N "
                 "(1 <= N <= %u)\n",
                 shard::kMaxShards);
    return 2;
  }
  std::string flag_str;
  for (const auto& f : flags) flag_str += " " + f;

  if (sbatch) {
    // A job-array script: one array task per shard, each writing its own
    // file. Collect the files and `dsm_report merge` them afterwards.
    std::printf("#!/bin/sh\n");
    std::printf("#SBATCH --array=0-%lu\n", shards - 1);
    std::printf("#SBATCH --output=%s/shard_%%a.log\n", out_dir.c_str());
    std::printf("exec %s%s --shard=${SLURM_ARRAY_TASK_ID}/%lu > "
                "%s/shard_${SLURM_ARRAY_TASK_ID}.of%lu.ndjson\n",
                bin.c_str(), flag_str.c_str(), shards, out_dir.c_str(),
                shards);
    return 0;
  }
  for (unsigned long i = 0; i < shards; ++i)
    std::printf("%s%s --shard=%lu/%lu > %s/shard_%lu.of%lu.ndjson\n",
                bin.c_str(), flag_str.c_str(), i, shards, out_dir.c_str(),
                i, shards);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "merge") return cmd_merge(args);
  if (cmd == "render") return cmd_render(args);
  if (cmd == "validate") return cmd_validate(args);
  if (cmd == "plan") return cmd_plan(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "timeline") return cmd_timeline(args);
  if (cmd == "progress") return cmd_progress(args);
  if (cmd == "resume") return cmd_resume(args);
  if (cmd == "trace") return cmd_trace(args);
  std::fprintf(stderr, "dsm_report: unknown command '%s'\n", cmd.c_str());
  return usage(argv[0]);
}
